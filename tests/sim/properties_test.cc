// Property-based sweeps over system configurations: for every
// combination of peer count, transaction size, reconciliation interval
// and store implementation, the CDSS invariants of §3.1/§4 must hold at
// every step of the run.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

using Param = std::tuple<size_t /*peers*/, size_t /*txn size*/,
                         size_t /*recon interval*/, StoreKind,
                         bool /*network-centric*/>;

class CdssPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  CdssConfig Config() const {
    CdssConfig config;
    config.participants = std::get<0>(GetParam());
    config.transaction_size = std::get<1>(GetParam());
    config.txns_between_recons = std::get<2>(GetParam());
    config.store = std::get<3>(GetParam());
    config.network_centric = std::get<4>(GetParam());
    config.rounds = 3;
    config.seed = 1234;
    config.workload.key_pool = 150;  // small pool -> plenty of conflicts
    config.workload.key_zipf_s = 1.0;
    return config;
  }
};

TEST_P(CdssPropertyTest, InvariantsHoldAtEveryStep) {
  auto cdss = Cdss::Make(Config());
  ASSERT_TRUE(cdss.ok());
  const size_t n = (*cdss)->participant_count();

  std::vector<size_t> applied_before(n, 0);
  for (size_t round = 0; round < 3; ++round) {
    for (size_t i = 0; i < n; ++i) {
      auto report = (*cdss)->StepParticipant(i);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      core::Participant& p = (*cdss)->participant(i);

      // Monotonicity: the applied set only grows; nothing is rolled back.
      EXPECT_GE(p.applied_count(), applied_before[i]);
      applied_before[i] = p.applied_count();

      // Applied and rejected sets are disjoint.
      for (const core::TransactionId& id : p.rejected()) {
        EXPECT_EQ(p.applied().count(id), 0u)
            << id.ToString() << " both applied and rejected";
      }

      // Every decision in the report is accounted for exactly once.
      const size_t decided = report->accepted.size() +
                             report->rejected.size() +
                             report->deferred.size();
      EXPECT_EQ(decided, report->fetched + report->reconsidered);

      // Integrity constraints hold after every reconciliation.
      EXPECT_TRUE(p.instance().CheckForeignKeys().ok());

      // Deferred work implies open conflict state or dirty keys; accepted
      // roots never appear in the deferred list.
      for (const core::TransactionId& id : report->accepted) {
        for (const core::TransactionId& d : report->deferred) {
          EXPECT_FALSE(id == d);
        }
      }
    }
    // State ratio stays within its theoretical bounds at every round.
    const double ratio = (*cdss)->CurrentStateRatio();
    EXPECT_GE(ratio, 1.0);
    EXPECT_LE(ratio, static_cast<double>(n));
  }
}

TEST_P(CdssPropertyTest, PairwiseAgreementOnAcceptedKeys) {
  // Consistency semantics: if two peers both hold a key AND both applied
  // the same deciding transaction set for it, they hold the same value.
  // We verify the weaker, directly-checkable form: any key held by all
  // peers with a single distinct value contributes ratio 1, and the
  // overall ratio never exceeds the peer count.
  auto cdss = Cdss::Make(Config());
  ASSERT_TRUE(cdss.ok());
  auto result = (*cdss)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->state_ratio, 1.0);
  EXPECT_LE(result->state_ratio,
            static_cast<double>((*cdss)->participant_count()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CdssPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(2, 5),
                       ::testing::Values<size_t>(1, 3),
                       ::testing::Values<size_t>(1, 4),
                       ::testing::Values(StoreKind::kCentral,
                                         StoreKind::kDht),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "peers" + std::to_string(std::get<0>(info.param)) + "_size" +
             std::to_string(std::get<1>(info.param)) + "_ri" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) == StoreKind::kCentral ? "_central"
                                                             : "_dht") +
             (std::get<4>(info.param) ? "_nc" : "_cc");
    });

// Convergence property: when peers write disjoint keys (no conflicts),
// everyone converges to the union after one extra reconciliation round.
class ConvergenceTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(ConvergenceTest, DisjointWritesConverge) {
  db::Catalog catalog;
  {
    auto schema = workload::MakeSwissProtCatalog();
    ASSERT_TRUE(schema.ok());
    catalog = *std::move(schema);
  }
  net::SimNetwork network;
  std::unique_ptr<storage::StorageEngine> engine;
  std::unique_ptr<core::UpdateStore> store;
  if (GetParam() == StoreKind::kCentral) {
    engine = storage::StorageEngine::InMemory();
    store = std::make_unique<store::CentralStore>(engine.get(), &network);
  } else {
    store = std::make_unique<store::DhtStore>(5, &network);
  }
  std::vector<std::unique_ptr<core::TrustPolicy>> policies;
  std::vector<std::unique_ptr<core::Participant>> peers;
  for (core::ParticipantId id = 0; id < 5; ++id) {
    auto policy = std::make_unique<core::TrustPolicy>(id);
    for (core::ParticipantId other = 0; other < 5; ++other) {
      if (other != id) policy->TrustPeer(other, 1);
    }
    ASSERT_TRUE(store->RegisterParticipant(id, policy.get()).ok());
    policies.push_back(std::move(policy));
    peers.push_back(
        std::make_unique<core::Participant>(id, &catalog, *policies.back()));
  }
  for (core::ParticipantId id = 0; id < 5; ++id) {
    const std::string protein = "P" + std::to_string(id);
    ASSERT_TRUE(
        peers[id]
            ->ExecuteTransaction({core::Update::Insert(
                workload::kFunctionRelation,
                db::Tuple{db::Value("Mus musculus"), db::Value(protein),
                          db::Value("apoptosis")},
                id)})
            .ok());
    ASSERT_TRUE(peers[id]->PublishAndReconcile(store.get()).ok());
  }
  for (auto& peer : peers) {
    ASSERT_TRUE(peer->Reconcile(store.get()).ok());
  }
  for (auto& peer : peers) {
    EXPECT_EQ(
        (*peer->instance().GetTable(workload::kFunctionRelation))->size(),
        5u);
  }
  std::vector<const core::Participant*> view;
  for (auto& peer : peers) view.push_back(peer.get());
  EXPECT_DOUBLE_EQ(StateRatio(view, workload::kFunctionRelation), 1.0);
}

INSTANTIATE_TEST_SUITE_P(BothStores, ConvergenceTest,
                         ::testing::Values(StoreKind::kCentral,
                                           StoreKind::kDht),
                         [](const ::testing::TestParamInfo<StoreKind>& info) {
                           return info.param == StoreKind::kCentral
                                      ? "Central"
                                      : "Dht";
                         });

}  // namespace
}  // namespace orchestra::sim
