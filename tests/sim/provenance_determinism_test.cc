// The provenance/tracing determinism contract: with the same seed, two
// runs of the same confederation produce byte-identical provenance
// JSONL and byte-identical simulated-time traces — on both stores, in
// delta fetch mode, with fault injection (and its retry machinery)
// armed. Also: parallel reconciliation must not change either stream,
// and switching tracing on must not change the decisions.
#include <gtest/gtest.h>

#include <string>

#include "core/provenance.h"
#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

struct RunOutput {
  std::string jsonl;
  std::string trace;
  size_t records = 0;
  size_t accepted = 0;
  size_t deferred = 0;
};

RunOutput RunOnce(StoreKind kind, size_t num_threads = 1,
                  bool sim_trace = true) {
  CdssConfig cfg;
  cfg.participants = 6;
  cfg.rounds = 4;
  cfg.txns_between_recons = 2;
  cfg.seed = 7;
  cfg.store = kind;
  cfg.fetch_mode = core::FetchMode::kDelta;
  cfg.num_threads = num_threads;
  cfg.sim_trace = sim_trace;
  cfg.fault.failure_probability = 0.05;
  cfg.fault.seed = 11;
  auto cdss = Cdss::Make(cfg);
  EXPECT_TRUE(cdss.ok()) << cdss.status().ToString();
  auto result = (*cdss)->Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunOutput out;
  for (size_t i = 0; i < (*cdss)->participant_count(); ++i) {
    const auto& log = (*cdss)->participant(i).provenance_log();
    out.jsonl += core::ToJsonLines(log);
    out.records += log.size();
  }
  if (sim_trace) out.trace = (*cdss)->sim_tracer()->ToJson();
  out.accepted = result->accepted;
  out.deferred = result->deferred;
  return out;
}

TEST(ProvenanceDeterminismTest, CentralRunsAreByteIdentical) {
  const RunOutput a = RunOnce(StoreKind::kCentral);
  const RunOutput b = RunOnce(StoreKind::kCentral);
  EXPECT_GT(a.records, 0u);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ProvenanceDeterminismTest, DhtRunsAreByteIdentical) {
  const RunOutput a = RunOnce(StoreKind::kDht);
  const RunOutput b = RunOnce(StoreKind::kDht);
  EXPECT_GT(a.records, 0u);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ProvenanceDeterminismTest, ParallelReconciliationChangesNothing) {
  const RunOutput serial = RunOnce(StoreKind::kCentral, 1);
  const RunOutput parallel = RunOnce(StoreKind::kCentral, 4);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  EXPECT_EQ(serial.trace, parallel.trace);
}

TEST(ProvenanceDeterminismTest, TracingDoesNotChangeDecisions) {
  const RunOutput traced = RunOnce(StoreKind::kCentral, 1, true);
  const RunOutput quiet = RunOnce(StoreKind::kCentral, 1, false);
  EXPECT_EQ(traced.jsonl, quiet.jsonl);
  EXPECT_EQ(traced.accepted, quiet.accepted);
  EXPECT_EQ(traced.deferred, quiet.deferred);
}

}  // namespace
}  // namespace orchestra::sim
