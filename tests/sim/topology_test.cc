// Trust topologies and the deletion-capable workload: extension features
// over the paper's uniform-trust, insert/replace-only evaluation.
#include <gtest/gtest.h>

#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

CdssConfig BaseConfig() {
  CdssConfig config;
  config.participants = 6;
  config.store = StoreKind::kCentral;
  config.transaction_size = 1;
  config.txns_between_recons = 3;
  config.rounds = 5;
  config.seed = 313;
  config.workload.key_pool = 150;
  config.workload.key_zipf_s = 1.0;
  return config;
}

TEST(TopologyTest, TieredTrustResolvesConflictsAutomatically) {
  CdssConfig uniform = BaseConfig();
  CdssConfig tiered = BaseConfig();
  tiered.topology = TrustTopology::kTiered;

  auto u = Cdss::Make(uniform);
  auto t = Cdss::Make(tiered);
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(t.ok());
  auto ur = (*u)->Run();
  auto tr = (*t)->Run();
  ASSERT_TRUE(ur.ok());
  ASSERT_TRUE(tr.ok());
  // Authority rankings decide cross-tier conflicts instead of deferring.
  EXPECT_LT(tr->deferred, ur->deferred);
  EXPECT_GT(tr->rejected, 0u);
}

TEST(TopologyTest, StarTopologyHubAlwaysWins) {
  CdssConfig config = BaseConfig();
  config.topology = TrustTopology::kStar;
  auto cdss = Cdss::Make(config);
  ASSERT_TRUE(cdss.ok());
  auto result = (*cdss)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->state_ratio, 1.0);
  EXPECT_LE(result->state_ratio, 6.0);
  // Conflicts involving the hub resolve in its favor automatically;
  // spoke-vs-spoke conflicts still defer, so both outcomes appear.
  EXPECT_GT(result->rejected, 0u);
}

TEST(TopologyTest, DeterministicPerTopology) {
  for (TrustTopology topology :
       {TrustTopology::kUniform, TrustTopology::kTiered,
        TrustTopology::kStar}) {
    CdssConfig config = BaseConfig();
    config.topology = topology;
    auto a = Cdss::Make(config);
    auto b = Cdss::Make(config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    auto ra = (*a)->Run();
    auto rb = (*b)->Run();
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_DOUBLE_EQ(ra->state_ratio, rb->state_ratio);
    EXPECT_EQ(ra->deferred, rb->deferred);
  }
}

TEST(DeletionWorkloadTest, RunsCleanAndKeepsForeignKeys) {
  CdssConfig config = BaseConfig();
  config.workload.delete_fraction = 0.25;
  auto cdss = Cdss::Make(config);
  ASSERT_TRUE(cdss.ok());
  for (size_t round = 0; round < config.rounds; ++round) {
    for (size_t i = 0; i < (*cdss)->participant_count(); ++i) {
      auto report = (*cdss)->StepParticipant(i);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(
          (*cdss)->participant(i).instance().CheckForeignKeys().ok());
    }
  }
}

TEST(DeletionWorkloadTest, DeletesGenerateDeleteVsWriteConflicts) {
  CdssConfig with = BaseConfig();
  with.workload.delete_fraction = 0.3;
  with.rounds = 6;
  CdssConfig without = BaseConfig();
  without.rounds = 6;
  auto w = Cdss::Make(with);
  auto wo = Cdss::Make(without);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(wo.ok());
  auto wr = (*w)->Run();
  auto wor = (*wo)->Run();
  ASSERT_TRUE(wr.ok());
  ASSERT_TRUE(wor.ok());
  // Deletions add conflict surface: strictly more non-accept outcomes.
  EXPECT_GT(wr->rejected + wr->deferred, wor->rejected + wor->deferred);
}

TEST(DeletionWorkloadTest, GeneratorEmitsFkSafeDeleteGroups) {
  auto catalog = workload::MakeSwissProtCatalog();
  ASSERT_TRUE(catalog.ok());
  workload::WorkloadConfig config;
  config.delete_fraction = 1.0;  // always delete when possible
  config.seed = 5;
  workload::SwissProtWorkload generator(config);
  db::Instance instance(&*catalog);
  // Seed one Function tuple plus two cross-references.
  auto function = instance.GetTable(workload::kFunctionRelation);
  auto crossref = instance.GetTable(workload::kCrossRefRelation);
  ASSERT_TRUE((*function)
                  ->Insert(db::Tuple{db::Value("Homo sapiens"),
                                     db::Value("P1"), db::Value("fn")})
                  .ok());
  for (const char* acc : {"A1", "A2"}) {
    ASSERT_TRUE((*crossref)
                    ->Insert(db::Tuple{db::Value("Homo sapiens"),
                                       db::Value("P1"), db::Value("EMBL"),
                                       db::Value(acc)})
                    .ok());
  }
  auto updates = generator.NextTransaction(1, instance);
  // The delete group removes both cross-references and then the parent.
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0].relation(), workload::kCrossRefRelation);
  EXPECT_EQ(updates[1].relation(), workload::kCrossRefRelation);
  EXPECT_EQ(updates[2].relation(), workload::kFunctionRelation);
  for (const auto& u : updates) EXPECT_TRUE(u.is_delete());
}

}  // namespace
}  // namespace orchestra::sim
