// Observability must be a pure observer: running the same seeded
// confederation with tracing enabled produces bit-identical per-peer
// decisions to a run with tracing off, and Cdss::Run exposes the
// registry's movement as per-round counter deltas that sum to the
// whole-run block.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

CdssConfig SmallConfig(StoreKind store) {
  CdssConfig cfg;
  cfg.participants = 8;
  cfg.store = store;
  cfg.rounds = 3;
  cfg.txns_between_recons = 2;
  return cfg;
}

std::vector<std::pair<uint32_t, uint64_t>> Sorted(const core::TxnIdSet& ids) {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (const core::TransactionId& id : ids) out.emplace_back(id.origin, id.seq);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TraceDeterminismTest, TracingDoesNotChangeDecisions) {
  for (StoreKind kind : {StoreKind::kCentral, StoreKind::kDht}) {
    if (Tracer::Global().enabled()) Tracer::Global().Disable();
    auto quiet = Cdss::Make(SmallConfig(kind));
    ASSERT_TRUE(quiet.ok());
    auto quiet_result = (*quiet)->Run();
    ASSERT_TRUE(quiet_result.ok()) << quiet_result.status().ToString();

    const std::string path =
        ::testing::TempDir() + "/trace_determinism.json";
    Tracer::Global().Enable(path);
    auto traced = Cdss::Make(SmallConfig(kind));
    ASSERT_TRUE(traced.ok());
    auto traced_result = (*traced)->Run();
    ASSERT_TRUE(traced_result.ok()) << traced_result.status().ToString();
    EXPECT_GT(Tracer::Global().event_count(), 0u);
    Tracer::Global().Disable();
    std::remove(path.c_str());

    EXPECT_EQ(traced_result->accepted, quiet_result->accepted);
    EXPECT_EQ(traced_result->rejected, quiet_result->rejected);
    EXPECT_EQ(traced_result->deferred, quiet_result->deferred);
    EXPECT_EQ(traced_result->state_ratio, quiet_result->state_ratio);
    for (size_t i = 0; i < (*quiet)->participant_count(); ++i) {
      EXPECT_EQ(Sorted((*traced)->participant(i).applied()),
                Sorted((*quiet)->participant(i).applied()))
          << "peer " << i;
      EXPECT_EQ(Sorted((*traced)->participant(i).rejected()),
                Sorted((*quiet)->participant(i).rejected()))
          << "peer " << i;
    }
  }
}

TEST(TraceDeterminismTest, RoundMetricsSumToWholeRunBlock) {
  auto sim = Cdss::Make(SmallConfig(StoreKind::kCentral));
  ASSERT_TRUE(sim.ok());
  auto result = (*sim)->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->round_metrics.size(), 3u);
  std::map<std::string, int64_t> summed;
  for (const auto& round : result->round_metrics) {
    for (const auto& [name, delta] : round.counters) summed[name] += delta;
  }
  EXPECT_EQ(summed, result->metrics);
  // The instrumented layers actually moved: one reconciliation per peer
  // per round, and the store saw this run's publishes.
  EXPECT_EQ(result->metrics.at("reconcile.rounds"), 8 * 3);
  EXPECT_GT(result->metrics.at("store.central.fetches"), 0);
}

}  // namespace
}  // namespace orchestra::sim
