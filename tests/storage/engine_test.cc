#include "storage/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

namespace orchestra::storage {
namespace {

TEST(EngineTest, PutGetDelete) {
  auto engine = StorageEngine::InMemory();
  ASSERT_TRUE(engine->Put("t", "k1", "v1").ok());
  auto got = engine->Get("t", "k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v1");
  EXPECT_TRUE(engine->Contains("t", "k1"));
  ASSERT_TRUE(engine->Delete("t", "k1").ok());
  EXPECT_FALSE(engine->Contains("t", "k1"));
  EXPECT_TRUE(engine->Get("t", "k1").status().IsNotFound());
}

TEST(EngineTest, GetFromMissingTableFails) {
  auto engine = StorageEngine::InMemory();
  EXPECT_TRUE(engine->Get("nope", "k").status().IsNotFound());
  EXPECT_FALSE(engine->Contains("nope", "k"));
  EXPECT_EQ(engine->TableSize("nope"), 0u);
}

TEST(EngineTest, PutOverwrites) {
  auto engine = StorageEngine::InMemory();
  ASSERT_TRUE(engine->Put("t", "k", "old").ok());
  ASSERT_TRUE(engine->Put("t", "k", "new").ok());
  EXPECT_EQ(*engine->Get("t", "k"), "new");
  EXPECT_EQ(engine->TableSize("t"), 1u);
}

TEST(EngineTest, DeleteIsIdempotent) {
  auto engine = StorageEngine::InMemory();
  EXPECT_TRUE(engine->Delete("t", "never-existed").ok());
}

TEST(EngineTest, ScanRangeIsOrderedAndHalfOpen) {
  auto engine = StorageEngine::InMemory();
  for (const char* k : {"b", "a", "d", "c"}) {
    ASSERT_TRUE(engine->Put("t", k, k).ok());
  }
  auto rows = engine->ScanRange("t", "b", "d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "b");
  EXPECT_EQ(rows[1].first, "c");
  // Empty hi scans to the end.
  EXPECT_EQ(engine->ScanRange("t", "c", "").size(), 2u);
  EXPECT_EQ(engine->ScanRange("t", "", "").size(), 4u);
}

TEST(EngineTest, ScanPrefix) {
  auto engine = StorageEngine::InMemory();
  ASSERT_TRUE(engine->Put("t", "epoch:1:a", "").ok());
  ASSERT_TRUE(engine->Put("t", "epoch:1:b", "").ok());
  ASSERT_TRUE(engine->Put("t", "epoch:2:a", "").ok());
  EXPECT_EQ(engine->ScanPrefix("t", "epoch:1:").size(), 2u);
  EXPECT_EQ(engine->ScanPrefix("t", "epoch:").size(), 3u);
  EXPECT_TRUE(engine->ScanPrefix("t", "zzz").empty());
}

TEST(EngineTest, SequencesAreMonotonicAndIndependent) {
  auto engine = StorageEngine::InMemory();
  EXPECT_EQ(engine->CurrentSequence("s"), 0);
  EXPECT_EQ(*engine->NextSequence("s"), 1);
  EXPECT_EQ(*engine->NextSequence("s"), 2);
  EXPECT_EQ(*engine->NextSequence("other"), 1);
  EXPECT_EQ(engine->CurrentSequence("s"), 2);
}

TEST(EngineTest, TablesAreIndependent) {
  auto engine = StorageEngine::InMemory();
  ASSERT_TRUE(engine->Put("a", "k", "va").ok());
  ASSERT_TRUE(engine->Put("b", "k", "vb").ok());
  EXPECT_EQ(*engine->Get("a", "k"), "va");
  EXPECT_EQ(*engine->Get("b", "k"), "vb");
}

class DurableEngineTest : public ::testing::Test {
 protected:
  DurableEngineTest() {
    path_ = (std::filesystem::temp_directory_path() /
             ("engine_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::remove(path_.c_str());
  }
  ~DurableEngineTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(DurableEngineTest, StateSurvivesReopen) {
  {
    auto engine = StorageEngine::OpenDurable(path_);
    ASSERT_TRUE(engine.ok());
    EXPECT_TRUE((*engine)->durable());
    ASSERT_TRUE((*engine)->Put("txn", "k1", "v1").ok());
    ASSERT_TRUE((*engine)->Put("txn", "k2", "v2").ok());
    ASSERT_TRUE((*engine)->Delete("txn", "k1").ok());
    ASSERT_TRUE((*engine)->NextSequence("epoch").ok());
    ASSERT_TRUE((*engine)->NextSequence("epoch").ok());
    ASSERT_TRUE((*engine)->Sync().ok());
  }
  auto engine = StorageEngine::OpenDurable(path_);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->Contains("txn", "k1"));
  EXPECT_EQ(*(*engine)->Get("txn", "k2"), "v2");
  EXPECT_EQ((*engine)->CurrentSequence("epoch"), 2);
  // The sequence continues past recovered state.
  EXPECT_EQ(*(*engine)->NextSequence("epoch"), 3);
}

TEST_F(DurableEngineTest, RecoversOverwrites) {
  {
    auto engine = StorageEngine::OpenDurable(path_);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("t", "k", "old").ok());
    ASSERT_TRUE((*engine)->Put("t", "k", "new").ok());
    ASSERT_TRUE((*engine)->Sync().ok());
  }
  auto engine = StorageEngine::OpenDurable(path_);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(*(*engine)->Get("t", "k"), "new");
}

TEST_F(DurableEngineTest, TornTailRecoversPrefix) {
  {
    auto engine = StorageEngine::OpenDurable(path_);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Put("t", "k1", "v1").ok());
    ASSERT_TRUE((*engine)->Put("t", "k2", "v2").ok());
    ASSERT_TRUE((*engine)->Sync().ok());
  }
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);
  auto engine = StorageEngine::OpenDurable(path_);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->Contains("t", "k1"));
  EXPECT_FALSE((*engine)->Contains("t", "k2"));
}

TEST(EngineTest, InMemoryIsNotDurable) {
  EXPECT_FALSE(StorageEngine::InMemory()->durable());
  EXPECT_TRUE(StorageEngine::InMemory()->Sync().ok());
}

}  // namespace
}  // namespace orchestra::storage
