#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "db/serde.h"

namespace orchestra::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    path_ = (std::filesystem::temp_directory_path() /
             ("wal_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::remove(path_.c_str());
  }
  ~WalTest() override { std::remove(path_.c_str()); }

  std::vector<std::pair<uint8_t, std::string>> ReplayAll() {
    auto wal = WriteAheadLog::Open(path_);
    ORCH_CHECK(wal.ok());
    std::vector<std::pair<uint8_t, std::string>> records;
    auto status = (*wal)->Replay([&](uint8_t type, std::string_view payload) {
      records.emplace_back(type, std::string(payload));
      return Status::OK();
    });
    ORCH_CHECK(status.ok(), "%s", status.ToString().c_str());
    return records;
  }

  std::string path_;
};

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST_F(WalTest, AppendAndReplay) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "first").ok());
    ASSERT_TRUE((*wal)->Append(2, "second record").ok());
    ASSERT_TRUE((*wal)->Append(1, "").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<uint8_t, std::string>{1, "first"}));
  EXPECT_EQ(records[1],
            (std::pair<uint8_t, std::string>{2, "second record"}));
  EXPECT_EQ(records[2], (std::pair<uint8_t, std::string>{1, ""}));
}

TEST_F(WalTest, ReopenAppends) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "a").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "b").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  EXPECT_EQ(ReplayAll().size(), 2u);
}

TEST_F(WalTest, TornTailIsTolerated) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "complete").ok());
    ASSERT_TRUE((*wal)->Append(2, "will be torn").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Truncate into the middle of the second record.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 4);
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "complete");
}

TEST_F(WalTest, MidLogCorruptionIsSkippedWithAccounting) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "first-record-payload").ok());
    ASSERT_TRUE((*wal)->Append(2, "second").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Clobber the first record's envelope magic (offset 8: right after
  // the v2 file header). Replay must resync at the second record and
  // account for the region it skipped — availability with honesty,
  // instead of v1's all-or-nothing kCorruption.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  std::vector<std::pair<uint8_t, std::string>> records;
  WriteAheadLog::ReplayStats stats;
  auto status = (*wal)->ReplayWithStats(
      [&](uint8_t type, std::string_view payload) {
        records.emplace_back(type, std::string(payload));
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::pair<uint8_t, std::string>{2, "second"}));
  EXPECT_EQ(stats.records, 1);
  EXPECT_EQ(stats.skipped_regions, 1);
  EXPECT_GT(stats.skipped_bytes, 0);
  EXPECT_FALSE(stats.legacy_format);
}

TEST_F(WalTest, CorruptionInsidePayloadIsDetectedAndSkipped) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "aaaaaaaaaaaaaaaaaaaaaaaa").ok());
    ASSERT_TRUE((*wal)->Append(2, "bbbbbbbbbbbbbbbbbbbbbbbb").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Flip a byte deep inside the first record's payload: the magic and
  // length survive, so only the checksum can catch this.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> payloads;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE((*wal)
                  ->ReplayWithStats(
                      [&](uint8_t, std::string_view payload) {
                        payloads.emplace_back(payload);
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  // The tampered record must never be delivered; the clean one must.
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "bbbbbbbbbbbbbbbbbbbbbbbb");
  EXPECT_EQ(stats.skipped_regions, 1);
}

TEST_F(WalTest, TornWriteInjectionResyncsAtNextRecord) {
  FaultInjector injector;
  FaultInjectorConfig cfg;
  cfg.corruption_probability = 1.0;
  // Seed chosen so the tear keeps a nonzero prefix of the record (an
  // empty prefix would leave no garbage to resync over).
  cfg.corruption_sites = {"storage.torn_write"};
  cfg.seed = 4;
  injector.Configure(cfg);
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "intact-before").ok());
    (*wal)->set_fault_injector(&injector);  // tears exactly this append
    ASSERT_TRUE((*wal)->Append(2, "torn-in-the-middle").ok());
    (*wal)->set_fault_injector(nullptr);
    ASSERT_TRUE((*wal)->Append(3, "intact-after").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  EXPECT_EQ(injector.corrupted(), 1);
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  std::vector<std::pair<uint8_t, std::string>> records;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE((*wal)
                  ->ReplayWithStats(
                      [&](uint8_t type, std::string_view payload) {
                        records.emplace_back(type, std::string(payload));
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::pair<uint8_t, std::string>{1, "intact-before"}));
  EXPECT_EQ(records[1], (std::pair<uint8_t, std::string>{3, "intact-after"}));
  EXPECT_EQ(stats.skipped_regions, 1);
}

TEST_F(WalTest, TruncateTailInjectionDeliversPrefix) {
  constexpr int kRecords = 20;
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE((*wal)->Append(1, "payload-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  FaultInjector injector;
  FaultInjectorConfig cfg;
  cfg.corruption_probability = 1.0;
  cfg.corruption_sites = {"storage.truncate_tail"};
  cfg.seed = 11;
  injector.Configure(cfg);
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  (*wal)->set_fault_injector(&injector);
  std::vector<std::string> payloads;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE((*wal)
                  ->ReplayWithStats(
                      [&](uint8_t, std::string_view payload) {
                        payloads.emplace_back(payload);
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(injector.corrupted(), 1);
  // Lost sectors at the tail cost the tail records and nothing else:
  // what survives is an exact prefix of what was written.
  ASSERT_LT(payloads.size(), static_cast<size_t>(kRecords));
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i], "payload-" + std::to_string(i));
  }
}

// Hand-builds a v1 (headerless, CRC32-IEEE) log file.
void WriteLegacyRecord(std::string* out, uint8_t type,
                       std::string_view payload) {
  std::string body;
  body.push_back(static_cast<char>(type));
  body.append(payload);
  const uint32_t crc = Crc32(body);
  out->append(reinterpret_cast<const char*>(&crc), 4);
  db::PutVarint64(out, payload.size());
  out->append(body);
}

TEST_F(WalTest, LegacyFileReplaysAndStaysLegacyOnAppend) {
  {
    std::string contents;
    WriteLegacyRecord(&contents, 1, "old-first");
    WriteLegacyRecord(&contents, 2, "old-second");
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
              contents.size());
    std::fclose(f);
  }
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE((*wal)->legacy_format());
    // Appends must continue in v1 so the file stays self-consistent.
    ASSERT_TRUE((*wal)->Append(3, "appended-after-upgrade").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  std::vector<std::pair<uint8_t, std::string>> records;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE((*wal)
                  ->ReplayWithStats(
                      [&](uint8_t type, std::string_view payload) {
                        records.emplace_back(type, std::string(payload));
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_TRUE(stats.legacy_format);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].second, "old-first");
  EXPECT_EQ(records[1].second, "old-second");
  EXPECT_EQ(records[2].second, "appended-after-upgrade");
}

TEST_F(WalTest, LegacyMidLogCorruptionIsStillReported) {
  {
    std::string contents;
    WriteLegacyRecord(&contents, 1, "first-record-payload");
    WriteLegacyRecord(&contents, 2, "second");
    contents[8] = 'X';  // inside the first record's body
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
              contents.size());
    std::fclose(f);
  }
  // v1 records carry no resync magic, so a mid-log CRC mismatch keeps
  // its historical strictness: the whole replay fails.
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  auto status = (*wal)->Replay(
      [](uint8_t, std::string_view) { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(WalTest, VisitorErrorAborts) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "x").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  auto status = (*wal)->Replay([](uint8_t, std::string_view) {
    return Status::Internal("stop");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(WalTest, EmptyLogReplaysNothing) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(ReplayAll().empty());
}

}  // namespace
}  // namespace orchestra::storage
