#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <vector>

namespace orchestra::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    path_ = (std::filesystem::temp_directory_path() /
             ("wal_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::remove(path_.c_str());
  }
  ~WalTest() override { std::remove(path_.c_str()); }

  std::vector<std::pair<uint8_t, std::string>> ReplayAll() {
    auto wal = WriteAheadLog::Open(path_);
    ORCH_CHECK(wal.ok());
    std::vector<std::pair<uint8_t, std::string>> records;
    auto status = (*wal)->Replay([&](uint8_t type, std::string_view payload) {
      records.emplace_back(type, std::string(payload));
      return Status::OK();
    });
    ORCH_CHECK(status.ok(), "%s", status.ToString().c_str());
    return records;
  }

  std::string path_;
};

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST_F(WalTest, AppendAndReplay) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "first").ok());
    ASSERT_TRUE((*wal)->Append(2, "second record").ok());
    ASSERT_TRUE((*wal)->Append(1, "").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<uint8_t, std::string>{1, "first"}));
  EXPECT_EQ(records[1],
            (std::pair<uint8_t, std::string>{2, "second record"}));
  EXPECT_EQ(records[2], (std::pair<uint8_t, std::string>{1, ""}));
}

TEST_F(WalTest, ReopenAppends) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "a").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "b").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  EXPECT_EQ(ReplayAll().size(), 2u);
}

TEST_F(WalTest, TornTailIsTolerated) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "complete").ok());
    ASSERT_TRUE((*wal)->Append(2, "will be torn").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Truncate into the middle of the second record.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 4);
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "complete");
}

TEST_F(WalTest, MidLogCorruptionIsReported) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "first-record-payload").ok());
    ASSERT_TRUE((*wal)->Append(2, "second").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Flip a byte inside the first record's payload.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  auto status = (*wal)->Replay(
      [](uint8_t, std::string_view) { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(WalTest, VisitorErrorAborts) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "x").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  auto status = (*wal)->Replay([](uint8_t, std::string_view) {
    return Status::Internal("stop");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(WalTest, EmptyLogReplaysNothing) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(ReplayAll().empty());
}

}  // namespace
}  // namespace orchestra::storage
