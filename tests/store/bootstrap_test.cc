// Bootstrap conformance (§1: a new participant populates its fresh
// local instance with another peer's published data, then curates and
// reconciles forward under its own trust policy). Run against both
// store implementations.
#include <gtest/gtest.h>

#include <memory>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Participant;
using core::ParticipantId;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;

enum class Kind { kCentral, kDht };

class BootstrapTest : public ::testing::TestWithParam<Kind> {
 protected:
  BootstrapTest() : catalog_(MakeProteinCatalog()) {
    if (GetParam() == Kind::kCentral) {
      engine_ = storage::StorageEngine::InMemory();
      store_ = std::make_unique<CentralStore>(engine_.get(), &network_);
    } else {
      store_ = std::make_unique<DhtStore>(4, &network_);
    }
    for (ParticipantId id = 1; id <= 3; ++id) {
      RegisterPeer(id);
      participants_.push_back(std::make_unique<Participant>(
          id, &catalog_, *policies_.back()));
    }
  }

  void RegisterPeer(ParticipantId id) {
    auto policy = std::make_unique<TrustPolicy>(id);
    for (ParticipantId other = 1; other <= 4; ++other) {
      if (other != id) policy->TrustPeer(other, 1);
    }
    ORCH_CHECK(store_->RegisterParticipant(id, policy.get()).ok());
    policies_.push_back(std::move(policy));
  }

  TrustPolicy PolicyFor(ParticipantId id) {
    TrustPolicy policy(id);
    for (ParticipantId other = 1; other <= 4; ++other) {
      if (other != id) policy.TrustPeer(other, 1);
    }
    return policy;
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<core::UpdateStore> store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_P(BootstrapTest, NewPeerAdoptsSourceInstance) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).Reconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Mod("rat", "p1", "a", "b", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());

  // Peer 4 joins the confederation by downloading peer 2's instance.
  RegisterPeer(4);
  auto fresh = Participant::BootstrapFrom(4, &catalog_, PolicyFor(4),
                                          store_.get(), 2);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_TRUE((*fresh)->instance() == P(2).instance());
  EXPECT_TRUE(InstanceHasExactly((*fresh)->instance(),
                                 {T({"rat", "p1", "b"})}));
  EXPECT_EQ((*fresh)->applied_count(), P(2).applied_count());
}

TEST_P(BootstrapTest, BootstrappedPeerReconcilesForward) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  RegisterPeer(4);
  auto fresh = Participant::BootstrapFrom(4, &catalog_, PolicyFor(4),
                                          store_.get(), 1);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  // The adopted window is not re-fetched...
  auto r1 = (*fresh)->Reconcile(store_.get());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->fetched, 0u);
  // ...but everything published afterwards flows normally.
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("mouse", "p2", "y", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());
  auto r2 = (*fresh)->Reconcile(store_.get());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(
      (*fresh)->instance(), {T({"rat", "p1", "a"}), T({"mouse", "p2", "y"})}));
}

TEST_P(BootstrapTest, SourceRejectionsAreNotInherited) {
  // Peer 2 rejected peer 1's tuple (own-version-wins); a newcomer
  // bootstrapping from peer 2 judges the same transaction under its own
  // policy — without a competing local version it simply defers/accepts.
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "mine", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "other", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  auto r = P(2).Reconcile(store_.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rejected.size(), 1u);

  RegisterPeer(4);
  auto fresh = Participant::BootstrapFrom(4, &catalog_, PolicyFor(4),
                                          store_.get(), 2);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  // Adopted peer 2's tuple; peer 1's competing insert arrives in the
  // undecided backlog and is rejected against the adopted instance —
  // decided by the newcomer itself, not inherited.
  EXPECT_TRUE(InstanceHasExactly((*fresh)->instance(),
                                 {T({"rat", "p1", "mine"})}));
  EXPECT_EQ((*fresh)->rejected_count(), 1u);
}

TEST_P(BootstrapTest, UndecidedBacklogTransfersToNewcomer) {
  // Peers 1 and 2 conflict; peer 3 defers both. A newcomer bootstrapping
  // from peer 3 inherits the open conflict to resolve under its own
  // authority.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "b", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(3).Reconcile(store_.get()).ok());
  ASSERT_EQ(P(3).deferred_count(), 2u);

  RegisterPeer(4);
  auto fresh = Participant::BootstrapFrom(4, &catalog_, PolicyFor(4),
                                          store_.get(), 3);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ((*fresh)->deferred_count(), 2u);
  ASSERT_EQ((*fresh)->pending_conflicts().size(), 1u);
  auto resolved = (*fresh)->ResolveConflict(store_.get(), 0, 0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*fresh)->deferred_count(), 0u);
  EXPECT_EQ((*fresh)->instance().TotalTuples(), 1u);
}

TEST_P(BootstrapTest, UnregisteredPeersFail) {
  EXPECT_FALSE(store_->Bootstrap(9, 1).ok());
  RegisterPeer(4);
  EXPECT_FALSE(store_->Bootstrap(4, 99).ok());
}

INSTANTIATE_TEST_SUITE_P(AllStores, BootstrapTest,
                         ::testing::Values(Kind::kCentral, Kind::kDht),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return info.param == Kind::kCentral ? "Central"
                                                               : "Dht";
                         });

}  // namespace
}  // namespace orchestra::store
