// Corruption sweep: whole-confederation runs with silent corruption
// injected at the storage and wire sites must decide bit-identically to
// the fault-free baseline — every rotten buffer caught by a checksum
// and recovered (re-read, failover, read-repair, re-fetch), none
// consumed. The verify-off control arm proves the detection layer is
// load-bearing, and a typo'd corruption site is a startup error.
#include <gtest/gtest.h>

#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

CdssConfig SweepConfig(StoreKind kind) {
  CdssConfig cfg;
  cfg.store = kind;
  cfg.participants = 10;
  cfg.rounds = 3;
  cfg.txns_between_recons = 2;
  if (kind == StoreKind::kCentral) {
    // Under kDelta the central store's publish pre-admits the batch to
    // the decoded-transaction arena and reconciliations never re-read
    // the stored rows this sweep corrupts; kFull keeps the at-rest read
    // path hot. (The DHT rots its stored replicas at install time, so
    // its default mode exercises the detection paths already.)
    cfg.fetch_mode = core::FetchMode::kFull;
  }
  return cfg;
}

void ArmCorruption(CdssConfig* cfg, uint64_t seed, double p = 0.01) {
  cfg->fault.corruption_probability = p;
  cfg->fault.corruption_sites = {"storage.bit_flip", "storage.torn_write",
                                 "storage.truncate_tail",
                                 "net.payload_corrupt"};
  cfg->fault.seed = seed;
  if (cfg->store == StoreKind::kDht) cfg->scrub_interval_rounds = 2;
}

class CorruptionSweepTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(CorruptionSweepTest, CorruptedRunsMatchCorruptionFreeBaseline) {
  auto baseline_sim = Cdss::Make(SweepConfig(GetParam()));
  ASSERT_TRUE(baseline_sim.ok());
  auto baseline = (*baseline_sim)->Run();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->corrupt_reads_detected, 0);
  EXPECT_EQ(baseline->undetected_corrupt_reads, 0);

  int64_t total_detected = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    CdssConfig cfg = SweepConfig(GetParam());
    ArmCorruption(&cfg, seed);
    auto sim = Cdss::Make(cfg);
    ASSERT_TRUE(sim.ok());
    auto result = (*sim)->Run();
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": " << result.status().ToString();
    EXPECT_GT((*sim)->fault_injector().corrupted(), 0) << "seed " << seed;
    total_detected += result->corrupt_reads_detected;

    // Corruption tolerance must be invisible in the outcome: identical
    // decision counts, identical divergence ratio, and not one read
    // served past a failing checksum.
    EXPECT_EQ(result->transactions_published,
              baseline->transactions_published)
        << "seed " << seed;
    EXPECT_EQ(result->accepted, baseline->accepted) << "seed " << seed;
    EXPECT_EQ(result->rejected, baseline->rejected) << "seed " << seed;
    EXPECT_EQ(result->deferred, baseline->deferred) << "seed " << seed;
    EXPECT_EQ(result->state_ratio, baseline->state_ratio) << "seed " << seed;
    EXPECT_EQ(result->undetected_corrupt_reads, 0) << "seed " << seed;
  }
  // The sweep must actually have exercised the detection paths.
  EXPECT_GT(total_detected, 0);
}

// The control arm: same rot, checksums off. The run must demonstrably
// consume corrupt bytes — otherwise the protected sweep above proves
// nothing about the detection layer.
TEST(CorruptionControlTest, VerifyOffConsumesRot) {
  CdssConfig cfg = SweepConfig(StoreKind::kDht);
  ArmCorruption(&cfg, 1, /*p=*/0.05);
  cfg.verify_checksums = false;
  cfg.scrub_interval_rounds = 0;  // the scrub would heal what rot lands
  auto sim = Cdss::Make(cfg);
  ASSERT_TRUE(sim.ok());
  auto result = (*sim)->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT((*sim)->fault_injector().corrupted(), 0);
  EXPECT_GT(result->undetected_corrupt_reads, 0);
  EXPECT_EQ(result->read_repairs, 0);
}

TEST(CorruptionConfigTest, UnknownCorruptionSiteIsAStartupError) {
  CdssConfig cfg = SweepConfig(StoreKind::kCentral);
  cfg.fault.corruption_probability = 0.01;
  cfg.fault.corruption_sites = {"storage.bitflip"};  // typo
  auto sim = Cdss::Make(cfg);
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(sim.status().message().find("storage.bitflip"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllStores, CorruptionSweepTest,
                         ::testing::Values(StoreKind::kCentral,
                                           StoreKind::kDht),
                         [](const auto& info) {
                           return info.param == StoreKind::kCentral ? "Central"
                                                                    : "Dht";
                         });

}  // namespace
}  // namespace orchestra::sim
