// Crash consistency under injected faults: atomic (stage-then-commit)
// publishing, stuck-epoch reaping, republish of aborted epochs, WAL
// replay after a faulted run, and the recno-keyed decision log that
// lets recovery distinguish an interrupted reconciliation. The failure
// model is the fault injector's: transient faults (one lost call) and
// sticky faults (a crashed process whose cleanup never runs).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <unistd.h>

#include "common/fault_injector.h"
#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Epoch;
using core::Participant;
using core::ParticipantId;
using core::ReconcileRetryOptions;
using core::Transaction;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::T;
using orchestra::testing::Txn;

enum class Kind { kCentral, kDht };

class CrashConsistencyTest : public ::testing::TestWithParam<Kind> {
 protected:
  CrashConsistencyTest() : catalog_(MakeProteinCatalog()) {
    if (GetParam() == Kind::kCentral) {
      engine_ = storage::StorageEngine::InMemory();
      engine_->set_fault_injector(&injector_);
      store_ = std::make_unique<CentralStore>(engine_.get(), &network_);
    } else {
      network_.set_fault_injector(&injector_);
      store_ = std::make_unique<DhtStore>(8, &network_);
    }
    for (ParticipantId id = 1; id <= 3; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 3; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      ORCH_CHECK(store_->RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(std::make_unique<Participant>(
          id, &catalog_, *policies_.back()));
    }
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  db::Catalog catalog_;
  net::SimNetwork network_;
  FaultInjector injector_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<core::UpdateStore> store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

// Satellite regression: a duplicate transaction in the middle of a
// batch must leave no trace. Before stage-then-commit, the central
// store's half-written epoch stayed "open" forever and froze every
// peer's stable watermark; the DHT's epoch went "done" before its
// transactions landed, making later fetches fail with Internal.
TEST_P(CrashConsistencyTest, DuplicateMidBatchLeavesNoTrace) {
  Transaction a = Txn(1, 0, {Ins("rat", "p1", "a", 1)});
  ASSERT_TRUE(store_->Publish(1, {a}).ok());

  Transaction b = Txn(1, 1, {Ins("rat", "p2", "b", 1)});
  Transaction a_dup = Txn(1, 0, {Ins("rat", "p1", "a", 1)});
  // b stages first; the duplicate is detected mid-batch.
  EXPECT_EQ(store_->Publish(1, {b, a_dup}).status().code(),
            StatusCode::kAlreadyExists);

  // The failed batch left nothing behind: b republishes fine, and the
  // watermark passes over the aborted epoch to deliver everything.
  ASSERT_TRUE(store_->Publish(1, {b}).ok());
  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size(), 2u);
  EXPECT_TRUE(InstanceHasExactly(
      P(2).instance(), {T({"rat", "p1", "a"}), T({"rat", "p2", "b"})}));
  auto again = P(2).Reconcile(store_.get());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->fetched, 0u);  // delivered exactly once
}

// A publisher that crashes mid-publish (sticky fault: its abort code
// never runs) leaves a stuck epoch. Reconcilers strike it and reap it
// after the configured number of observations; the watermark then
// passes over it, and the recovered publisher republishes the same
// transactions in a fresh epoch — delivered exactly once, never
// surfacing Internal.
TEST_P(CrashConsistencyTest, StickyCrashMidPublishIsReapedAndRepublishable) {
  // Crash at the third injectable call: in both stores this lands after
  // the epoch has been opened (the central store's first two calls are
  // the epoch sequence and the "open" row; the DHT's begin-epoch message
  // is at latest its second charged send) and before the commit point,
  // so the epoch is left durably stuck.
  FaultInjectorConfig crash;
  crash.fail_at_call = 3;
  crash.sticky = true;
  injector_.Configure(crash);

  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  auto failed = P(1).Publish(store_.get());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(injector_.tripped());

  // The crashed publisher is gone; the store itself is healthy again.
  injector_.Disable();

  // Another peer publishes past the stuck epoch.
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p2", "y", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());

  // Peer 3 reconciles repeatedly. Within the reap threshold (default 3
  // observations) the stuck epoch is aborted and peer 2's transaction
  // comes through; no reconciliation ever fails.
  size_t delivered = 0;
  for (int round = 0; round < 4 && delivered == 0; ++round) {
    auto report = P(3).Reconcile(store_.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    delivered += report->accepted.size();
  }
  EXPECT_EQ(delivered, 1u);
  EXPECT_TRUE(InstanceHasExactly(P(3).instance(), {T({"rat", "p2", "y"})}));

  // Peer 1 "recovers": its publish queue survived the failed attempt,
  // and the aborted epoch's residue does not block republication.
  auto republished = P(1).Publish(store_.get());
  ASSERT_TRUE(republished.ok()) << republished.status().ToString();
  auto report = P(3).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(
      P(3).instance(), {T({"rat", "p1", "x"}), T({"rat", "p2", "y"})}));
  auto drained = P(3).Reconcile(store_.get());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->fetched, 0u);  // exactly once, even after the crash
}

// Satellite: decisions are recorded keyed by reconciliation number, and
// the store exposes the last fully recorded recno. A recovery bundle
// whose last_decided_recno trails recno pinpoints a participant that
// crashed between fetching and recording.
TEST_P(CrashConsistencyTest, LastDecidedRecnoTracksRecordedDecisions) {
  Transaction a = Txn(1, 0, {Ins("rat", "p1", "a", 1)});
  ASSERT_TRUE(store_->Publish(1, {a}).ok());

  auto fetch = store_->BeginReconciliation(2);
  ASSERT_TRUE(fetch.ok());
  ASSERT_EQ(fetch->trusted.size(), 1u);

  // Crash window: fetched but never recorded.
  auto interrupted = store_->FetchRecoveryState(2);
  ASSERT_TRUE(interrupted.ok());
  EXPECT_LT(interrupted->last_decided_recno, fetch->recno);
  EXPECT_EQ(interrupted->undecided.size(), 1u);

  ASSERT_TRUE(store_->RecordDecisions(2, fetch->recno, {a.id}, {}).ok());
  auto recorded = store_->FetchRecoveryState(2);
  ASSERT_TRUE(recorded.ok());
  EXPECT_EQ(recorded->last_decided_recno, fetch->recno);
  EXPECT_EQ(recorded->undecided.size(), 0u);
  ASSERT_EQ(recorded->applied.size(), 1u);
  EXPECT_EQ(recorded->applied[0].id, a.id);
}

INSTANTIATE_TEST_SUITE_P(AllStores, CrashConsistencyTest,
                         ::testing::Values(Kind::kCentral, Kind::kDht),
                         [](const auto& info) {
                           return info.param == Kind::kCentral ? "Central"
                                                               : "Dht";
                         });

// A confederation over the WAL-backed engine runs with transient faults
// absorbed by the retry layer; after a store crash, WAL replay rebuilds
// a store that serves the same state — nothing re-delivered, nothing
// lost, staged residue of failed attempts filtered out.
TEST(WalCrashConsistencyTest, FaultedRunSurvivesWalReplay) {
  db::Catalog catalog = MakeProteinCatalog();
  net::SimNetwork network;
  const std::string wal_path =
      (std::filesystem::temp_directory_path() /
       ("crash_consistency_" + std::to_string(::getpid()) + ".wal"))
          .string();
  std::remove(wal_path.c_str());

  std::vector<std::unique_ptr<TrustPolicy>> policies;
  for (ParticipantId id = 1; id <= 2; ++id) {
    auto policy = std::make_unique<TrustPolicy>(id);
    policy->TrustPeer(id == 1 ? 2 : 1, 1);
    policies.push_back(std::move(policy));
  }
  Participant alice(1, &catalog, *policies[0]);
  Participant bob(2, &catalog, *policies[1]);

  FaultInjector injector;
  FaultInjectorConfig faults;
  faults.failure_probability = 0.05;
  faults.seed = 11;
  ReconcileRetryOptions retry;  // defaults: up to 8 attempts

  {
    auto engine = storage::StorageEngine::OpenDurable(wal_path);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    (*engine)->set_fault_injector(&injector);
    injector.Configure(faults);
    CentralStore store(engine->get(), &network);
    ASSERT_TRUE(store.RegisterParticipant(1, policies[0].get()).ok());
    ASSERT_TRUE(store.RegisterParticipant(2, policies[1].get()).ok());

    for (int round = 0; round < 6; ++round) {
      Participant& p = (round % 2 == 0) ? alice : bob;
      const std::string key = "p" + std::to_string(round);
      ASSERT_TRUE(
          p.ExecuteTransaction({Ins("rat", key.c_str(), "v", p.id())}).ok());
      ASSERT_TRUE(p.PublishWithRetry(&store, retry).ok());
      ASSERT_TRUE(p.ReconcileWithRetry(&store, retry).ok());
    }
    ASSERT_TRUE(alice.ReconcileWithRetry(&store, retry).ok());
    ASSERT_GT(injector.injected(), 0);  // the run was actually faulted
    // Store process dies here; the WAL is all that survives.
  }

  auto engine = storage::StorageEngine::OpenDurable(wal_path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  CentralStore store(engine->get(), &network);
  ASSERT_TRUE(store.RegisterParticipant(1, policies[0].get()).ok());
  ASSERT_TRUE(store.RegisterParticipant(2, policies[1].get()).ok());

  // Replay reproduced the committed state exactly: both peers are
  // already caught up and nothing is re-delivered.
  auto a = alice.Reconcile(&store);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->fetched, 0u);
  auto b = bob.Reconcile(&store);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->fetched, 0u);
  EXPECT_EQ(alice.applied_count(), bob.applied_count());

  // A participant rebuilt from the replayed store matches the original.
  auto recovered = Participant::RecoverFromStore(2, &catalog, *policies[1],
                                                 &store);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->applied_count(), bob.applied_count());
  EXPECT_EQ((*recovered)->instance().TotalTuples(),
            bob.instance().TotalTuples());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace orchestra::store
