// Delta-fetch equivalence: the fetch cache and delta windows
// (core::FetchMode::kDelta) are a pure cost optimization. Multi-round
// runs with interleaved publishes — fault-free, with injected faults
// (the fault-sweep composition), and under DHT node churn — must
// produce per-peer decision sets bit-identical to the full-fetch and
// windowed baselines. The DHT's batched multi-get must also visibly
// reduce message counts, or the batching layer is dead code.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

constexpr core::FetchMode kModes[] = {core::FetchMode::kFull,
                                      core::FetchMode::kWindowed,
                                      core::FetchMode::kDelta};

CdssConfig BaseConfig(StoreKind kind) {
  CdssConfig cfg;
  cfg.store = kind;
  cfg.participants = 10;
  cfg.rounds = 4;
  cfg.txns_between_recons = 2;
  return cfg;
}

std::vector<std::pair<uint32_t, uint64_t>> Sorted(const core::TxnIdSet& ids) {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (const core::TransactionId& id : ids) out.emplace_back(id.origin, id.seq);
  std::sort(out.begin(), out.end());
  return out;
}

struct ModeOutcome {
  CdssResult result;
  std::vector<std::pair<std::vector<std::pair<uint32_t, uint64_t>>,
                        std::vector<std::pair<uint32_t, uint64_t>>>>
      peers;  // (applied, rejected) per participant
};

ModeOutcome RunMode(CdssConfig cfg, core::FetchMode mode) {
  cfg.fetch_mode = mode;
  auto sim = Cdss::Make(cfg);
  EXPECT_TRUE(sim.ok());
  auto result = (*sim)->Run();
  EXPECT_TRUE(result.ok()) << core::FetchModeName(mode) << ": "
                           << result.status().ToString();
  ModeOutcome out;
  out.result = *result;
  for (size_t i = 0; i < (*sim)->participant_count(); ++i) {
    const core::Participant& p = (*sim)->participant(i);
    out.peers.emplace_back(Sorted(p.applied()), Sorted(p.rejected()));
  }
  return out;
}

class DeltaFetchTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(DeltaFetchTest, ModesProduceIdenticalDecisions) {
  const ModeOutcome baseline = RunMode(BaseConfig(GetParam()),
                                       core::FetchMode::kFull);
  for (core::FetchMode mode : {core::FetchMode::kWindowed,
                               core::FetchMode::kDelta}) {
    const ModeOutcome outcome = RunMode(BaseConfig(GetParam()), mode);
    EXPECT_EQ(outcome.result.accepted, baseline.result.accepted)
        << core::FetchModeName(mode);
    EXPECT_EQ(outcome.result.rejected, baseline.result.rejected)
        << core::FetchModeName(mode);
    EXPECT_EQ(outcome.result.deferred, baseline.result.deferred)
        << core::FetchModeName(mode);
    EXPECT_EQ(outcome.result.state_ratio, baseline.result.state_ratio)
        << core::FetchModeName(mode);
    EXPECT_EQ(outcome.peers, baseline.peers) << core::FetchModeName(mode);
  }
}

TEST_P(DeltaFetchTest, ModesProduceIdenticalDecisionsUnderFaults) {
  // The fault-sweep composition: probabilistic faults over the store's
  // side-effecting operations. Fault *draws* differ across modes (the
  // modes make different numbers of side-effecting calls), but every
  // faulted run must still converge to the same final decisions.
  const ModeOutcome reference = RunMode(BaseConfig(GetParam()),
                                        core::FetchMode::kFull);
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (core::FetchMode mode : kModes) {
      CdssConfig cfg = BaseConfig(GetParam());
      cfg.fault.failure_probability = 0.01;
      cfg.fault.seed = seed;
      const ModeOutcome outcome = RunMode(cfg, mode);
      EXPECT_EQ(outcome.peers, reference.peers)
          << core::FetchModeName(mode) << " seed " << seed;
      EXPECT_EQ(outcome.result.state_ratio, reference.result.state_ratio)
          << core::FetchModeName(mode) << " seed " << seed;
    }
  }
}

TEST(DeltaFetchDhtTest, ModesProduceIdenticalDecisionsUnderChurn) {
  CdssConfig churned = BaseConfig(StoreKind::kDht);
  churned.rounds = 6;
  churned.participants = 12;
  churned.replication_factor = 3;
  churned.churn.enabled = true;
  churned.churn.seed = 5;
  churned.churn.crash_probability = 0.05;
  churned.churn.join_probability = 0.5;
  churned.churn.leave_probability = 0.25;
  churned.churn.min_live_nodes = 6;

  CdssConfig quiet = churned;
  quiet.churn = ChurnConfig{};
  const ModeOutcome baseline = RunMode(quiet, core::FetchMode::kFull);
  for (core::FetchMode mode : kModes) {
    const ModeOutcome outcome = RunMode(churned, mode);
    EXPECT_EQ(outcome.peers, baseline.peers) << core::FetchModeName(mode);
    EXPECT_EQ(outcome.result.state_ratio, baseline.result.state_ratio)
        << core::FetchModeName(mode);
  }
}

TEST(DeltaFetchDhtTest, BatchedMultiGetReducesMessages) {
  // Same schedule, same decisions — fewer protocol messages at every
  // step down: full re-requests all of history each round, windowed
  // requests only the new window but one message per key, delta batches
  // the window's keys into per-owner multi-gets.
  const ModeOutcome full = RunMode(BaseConfig(StoreKind::kDht),
                                   core::FetchMode::kFull);
  const ModeOutcome windowed = RunMode(BaseConfig(StoreKind::kDht),
                                       core::FetchMode::kWindowed);
  const ModeOutcome delta = RunMode(BaseConfig(StoreKind::kDht),
                                    core::FetchMode::kDelta);
  EXPECT_LT(delta.result.messages, windowed.result.messages);
  EXPECT_LT(windowed.result.messages, full.result.messages);
  EXPECT_EQ(delta.peers, full.peers);
}

TEST(DeltaFetchCentralTest, DeltaServesRepeatWindowsFromTheCache) {
  // Drive rounds manually so per-reconciliation fetch stats are visible:
  // under kDelta the central store admits transactions to the arena at
  // publish time, so window scans decode nothing and later peers hit.
  CdssConfig cfg = BaseConfig(StoreKind::kCentral);
  cfg.fetch_mode = core::FetchMode::kDelta;
  auto sim = Cdss::Make(cfg);
  ASSERT_TRUE(sim.ok());
  core::FetchStats total;
  for (size_t round = 0; round < cfg.rounds; ++round) {
    for (size_t i = 0; i < (*sim)->participant_count(); ++i) {
      auto report = (*sim)->StepParticipant(i);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      total += report->fetch_stats;
    }
  }
  EXPECT_GT(total.cache_hits, 0);
  EXPECT_EQ(total.decoded, 0);
}

INSTANTIATE_TEST_SUITE_P(AllStores, DeltaFetchTest,
                         ::testing::Values(StoreKind::kCentral,
                                           StoreKind::kDht),
                         [](const auto& info) {
                           return info.param == StoreKind::kCentral ? "Central"
                                                                    : "Dht";
                         });

}  // namespace
}  // namespace orchestra::sim
