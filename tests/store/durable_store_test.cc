// End-to-end durability: a confederation runs over the WAL-backed
// engine, the central store "crashes" (engine destroyed), a new store
// is opened over the recovered WAL, and reconciliation continues
// exactly where it left off — including participant crash recovery
// against the recovered store.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Participant;
using core::ParticipantId;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;

class DurableStoreTest : public ::testing::Test {
 protected:
  DurableStoreTest() : catalog_(MakeProteinCatalog()) {
    wal_path_ =
        (std::filesystem::temp_directory_path() /
         ("durable_store_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    std::remove(wal_path_.c_str());
    for (ParticipantId id = 1; id <= 3; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 3; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      policies_.push_back(std::move(policy));
    }
  }
  ~DurableStoreTest() override { std::remove(wal_path_.c_str()); }

  TrustPolicy PolicyCopy(ParticipantId id) { return *policies_[id - 1]; }

  std::unique_ptr<CentralStore> OpenStore() {
    auto engine = storage::StorageEngine::OpenDurable(wal_path_);
    ORCH_CHECK(engine.ok(), "%s", engine.status().ToString().c_str());
    engine_ = std::move(*engine);
    auto store = std::make_unique<CentralStore>(engine_.get(), &network_);
    for (ParticipantId id = 1; id <= 3; ++id) {
      ORCH_CHECK(store->RegisterParticipant(id, policies_[id - 1].get()).ok());
    }
    return store;
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::string wal_path_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
};

TEST_F(DurableStoreTest, StoreSurvivesCrashMidConfederation) {
  Participant alice(1, &catalog_, PolicyCopy(1));
  Participant bob(2, &catalog_, PolicyCopy(2));
  {
    auto store = OpenStore();
    ASSERT_TRUE(alice.ExecuteTransaction({Ins("rat", "p1", "v1", 1)}).ok());
    ASSERT_TRUE(alice.PublishAndReconcile(store.get()).ok());
    ASSERT_TRUE(bob.Reconcile(store.get()).ok());
    ASSERT_TRUE(bob.ExecuteTransaction({Mod("rat", "p1", "v1", "v2", 2)}).ok());
    ASSERT_TRUE(bob.PublishAndReconcile(store.get()).ok());
    // Store process "crashes" here: engine and store destroyed.
  }
  auto store = OpenStore();  // WAL replay rebuilds everything
  // Reconciliation continues: alice sees bob's revision, exactly once.
  auto report = alice.Reconcile(store.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(alice.instance(), {T({"rat", "p1", "v2"})}));
  // Nothing is re-delivered after recovery.
  auto again = alice.Reconcile(store.get());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->fetched, 0u);
}

TEST_F(DurableStoreTest, ParticipantAndStoreRecoverTogether) {
  {
    auto store = OpenStore();
    Participant alice(1, &catalog_, PolicyCopy(1));
    Participant bob(2, &catalog_, PolicyCopy(2));
    Participant carol(3, &catalog_, PolicyCopy(3));
    ASSERT_TRUE(alice.ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
    ASSERT_TRUE(alice.PublishAndReconcile(store.get()).ok());
    ASSERT_TRUE(bob.ExecuteTransaction({Ins("rat", "p1", "b", 2)}).ok());
    ASSERT_TRUE(bob.PublishAndReconcile(store.get()).ok());
    ASSERT_TRUE(carol.Reconcile(store.get()).ok());
    ASSERT_EQ(carol.deferred_count(), 2u);
    // Everything dies: store process and carol's laptop.
  }
  auto store = OpenStore();
  auto carol = Participant::RecoverFromStore(3, &catalog_, PolicyCopy(3),
                                             store.get());
  ASSERT_TRUE(carol.ok()) << carol.status().ToString();
  // The deferred conflict survived two crashes; resolve it now.
  ASSERT_EQ((*carol)->pending_conflicts().size(), 1u);
  auto resolved = (*carol)->ResolveConflict(store.get(), 0, 0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*carol)->deferred_count(), 0u);
  EXPECT_EQ((*carol)->instance().TotalTuples(), 1u);
}

TEST_F(DurableStoreTest, EpochSequenceContinuesAfterRecovery) {
  core::Epoch before_crash;
  Participant alice(1, &catalog_, PolicyCopy(1));
  {
    auto store = OpenStore();
    ASSERT_TRUE(alice.ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
    auto epoch = alice.Publish(store.get());
    ASSERT_TRUE(epoch.ok());
    before_crash = *epoch;
  }
  auto store = OpenStore();
  ASSERT_TRUE(alice.ExecuteTransaction({Ins("rat", "p2", "y", 1)}).ok());
  auto epoch = alice.Publish(store.get());
  ASSERT_TRUE(epoch.ok());
  EXPECT_GT(*epoch, before_crash);  // the sequence never reuses epochs
}

}  // namespace
}  // namespace orchestra::store
