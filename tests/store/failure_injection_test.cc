// Failure injection: wraps an update store in a decorator that fails
// calls on command and verifies participants degrade gracefully — no
// lost transactions, no corrupted instances, clean retry paths. The
// paper assumes reliable delivery (§5.2.2); these tests pin down what
// the *client* guarantees when the store layer violates that assumption.
#include <gtest/gtest.h>

#include <memory>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Epoch;
using core::Participant;
using core::ParticipantId;
using core::ReconcileFetch;
using core::RecoveryBundle;
using core::StoreStats;
using core::Transaction;
using core::TransactionId;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::T;

/// Delegating store that fails selected operations until told otherwise.
class FlakyStore : public core::UpdateStore {
 public:
  explicit FlakyStore(core::UpdateStore* inner) : inner_(inner) {}

  bool fail_publish = false;
  bool fail_begin = false;
  bool fail_record = false;

  Status RegisterParticipant(ParticipantId peer,
                             const TrustPolicy* policy) override {
    return inner_->RegisterParticipant(peer, policy);
  }
  Result<Epoch> Publish(ParticipantId peer,
                        std::vector<Transaction> txns) override {
    if (fail_publish) return Status::Unavailable("injected publish failure");
    return inner_->Publish(peer, std::move(txns));
  }
  Result<ReconcileFetch> BeginReconciliation(ParticipantId peer) override {
    if (fail_begin) return Status::Unavailable("injected fetch failure");
    return inner_->BeginReconciliation(peer);
  }
  Status RecordDecisions(ParticipantId peer, int64_t recno,
                         const std::vector<TransactionId>& applied,
                         const std::vector<TransactionId>& rejected) override {
    if (fail_record) return Status::Unavailable("injected record failure");
    return inner_->RecordDecisions(peer, recno, applied, rejected);
  }
  Result<RecoveryBundle> FetchRecoveryState(ParticipantId peer) const override {
    return inner_->FetchRecoveryState(peer);
  }
  Result<RecoveryBundle> Bootstrap(ParticipantId new_peer,
                                   ParticipantId source_peer) override {
    return inner_->Bootstrap(new_peer, source_peer);
  }
  StoreStats StatsFor(ParticipantId peer) const override {
    return inner_->StatsFor(peer);
  }
  std::string_view name() const override { return "flaky"; }

 private:
  core::UpdateStore* inner_;
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest()
      : catalog_(MakeProteinCatalog()),
        engine_(storage::StorageEngine::InMemory()),
        inner_(engine_.get(), &network_),
        store_(&inner_) {
    for (ParticipantId id = 1; id <= 2; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      policy->TrustPeer(id == 1 ? 2 : 1, 1);
      ORCH_CHECK(store_.RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(
          std::make_unique<Participant>(id, &catalog_, *policies_.back()));
    }
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  CentralStore inner_;
  FlakyStore store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_F(FailureInjectionTest, FailedPublishKeepsQueueForRetry) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  store_.fail_publish = true;
  EXPECT_EQ(P(1).Publish(&store_).status().code(), StatusCode::kUnavailable);
  // Retry succeeds and delivers the same transaction exactly once.
  store_.fail_publish = false;
  auto epoch = P(1).Publish(&store_);
  ASSERT_TRUE(epoch.ok());
  EXPECT_GT(*epoch, 0);
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "x"})}));
  // The queue drained: another publish is a no-op.
  auto again = P(1).Publish(&store_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, core::kNoEpoch);
}

TEST_F(FailureInjectionTest, FailedFetchLeavesStateUntouched) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  store_.fail_begin = true;
  EXPECT_EQ(P(2).Reconcile(&store_).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(P(2).instance().TotalTuples(), 0u);
  EXPECT_EQ(P(2).applied_count(), 0u);
  // Once the store is back, reconciliation proceeds normally.
  store_.fail_begin = false;
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);
}

TEST_F(FailureInjectionTest, FailedDecisionRecordingIsRecoverable) {
  // Decisions are applied locally before recording. A transiently failed
  // recording no longer fails the round: local state is already
  // consistent, so the round succeeds and the unacknowledged decisions
  // ride along with the next recording (which is idempotent).
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  store_.fail_record = true;
  auto flaky_report = P(2).Reconcile(&store_);
  ASSERT_TRUE(flaky_report.ok()) << flaky_report.status().ToString();
  EXPECT_EQ(flaky_report->accepted.size(), 1u);
  // The instance received the update even though the store lost the ack.
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "x"})}));
  // The store still considers the transaction undecided.
  auto before = store_.FetchRecoveryState(2);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->applied.size(), 0u);
  store_.fail_record = false;
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Nothing is re-decided or duplicated; the stashed decision is
  // re-sent, so the store now has it durably.
  EXPECT_TRUE(report->accepted.empty());
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "x"})}));
  auto after = store_.FetchRecoveryState(2);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->applied.size(), 1u);
}

TEST_F(FailureInjectionTest, ExecuteNeverTouchesTheStore) {
  store_.fail_publish = true;
  store_.fail_begin = true;
  store_.fail_record = true;
  // Local work is fully autonomous (§3: loosely coupled participants).
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(
      P(1).ExecuteTransaction(
              {core::Update::Modify("F", T({"rat", "p1", "x"}),
                                    T({"rat", "p1", "y"}), 1)})
          .ok());
  EXPECT_TRUE(InstanceHasExactly(P(1).instance(), {T({"rat", "p1", "y"})}));
}

}  // namespace
}  // namespace orchestra::store
