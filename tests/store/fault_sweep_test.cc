// Fault sweep: whole-confederation runs with probabilistic fault
// injection over the store's side-effecting operations must produce
// results identical to the fault-free run — same decisions, same
// divergence ratio — with every injected fault absorbed by staging,
// reaping, retransmission, or retry, and never surfacing as an error
// (in particular never as Internal, the old symptom of a half-written
// epoch).
#include <gtest/gtest.h>

#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

CdssConfig SweepConfig(StoreKind kind) {
  CdssConfig cfg;
  cfg.store = kind;
  cfg.participants = 10;
  cfg.rounds = 3;
  cfg.txns_between_recons = 2;
  return cfg;
}

class FaultSweepTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(FaultSweepTest, FaultedRunsMatchFaultFreeBaseline) {
  auto baseline_sim = Cdss::Make(SweepConfig(GetParam()));
  ASSERT_TRUE(baseline_sim.ok());
  auto baseline = (*baseline_sim)->Run();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->faults_injected, 0);

  int64_t total_faults = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    CdssConfig cfg = SweepConfig(GetParam());
    cfg.fault.failure_probability = 0.01;
    cfg.fault.seed = seed;
    auto sim = Cdss::Make(cfg);
    ASSERT_TRUE(sim.ok());
    auto result = (*sim)->Run();
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": " << result.status().ToString();
    total_faults += result->faults_injected;

    // Fault tolerance must be invisible in the outcome: identical
    // decision counts and an identical instance-divergence ratio.
    EXPECT_EQ(result->transactions_published,
              baseline->transactions_published)
        << "seed " << seed;
    EXPECT_EQ(result->accepted, baseline->accepted) << "seed " << seed;
    EXPECT_EQ(result->rejected, baseline->rejected) << "seed " << seed;
    EXPECT_EQ(result->deferred, baseline->deferred) << "seed " << seed;
    EXPECT_EQ(result->state_ratio, baseline->state_ratio) << "seed " << seed;
  }
  // The sweep must actually have exercised the fault paths.
  EXPECT_GT(total_faults, 0);
}

TEST_P(FaultSweepTest, FaultedRunQuiescesOnceInjectionStops) {
  CdssConfig cfg = SweepConfig(GetParam());
  cfg.fault.failure_probability = 0.01;
  cfg.fault.seed = 2;
  auto sim = Cdss::Make(cfg);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run().ok());

  // Repair the store and drain: one pass delivers whatever the round
  // schedule left in flight, after which every peer's watermark has
  // reached the last committed epoch and nothing is pending.
  (*sim)->fault_injector().Disable();
  for (size_t i = 0; i < (*sim)->participant_count(); ++i) {
    auto report = (*sim)->participant(i).Reconcile(&(*sim)->store());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  for (size_t i = 0; i < (*sim)->participant_count(); ++i) {
    auto report = (*sim)->participant(i).Reconcile(&(*sim)->store());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->fetched, 0u) << "peer " << i << " still catching up";
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, FaultSweepTest,
                         ::testing::Values(StoreKind::kCentral,
                                           StoreKind::kDht),
                         [](const auto& info) {
                           return info.param == StoreKind::kCentral ? "Central"
                                                                    : "Dht";
                         });

}  // namespace
}  // namespace orchestra::sim
