// End-to-end integrity in the stores: the DHT's verified group reads
// (failover past corrupt replicas, read-repair, quarantine of repeat
// rot-servers, scrub), the central store's re-read of checksum-failed
// rows, the verify-off control arm that consumes rot undetected, and
// the typed kDataLoss a truncated decision log surfaces on recovery.
//
// Corruption is injected through the deterministic fault injector; where
// a test needs a *partial* rot pattern (some replicas corrupt, some
// clean), it scans for a seed whose per-call draw sequence matches —
// the draw depends only on (seed, site, call index), so a dry probe
// against a scratch injector reproduces the store's schedule exactly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::ParticipantId;
using core::Transaction;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Txn;

int64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name).value();
}

/// First seed (1..999) whose storage.bit_flip draw sequence at
/// probability `p` matches `pattern` (true = the call corrupts). The
/// fire decision is independent of the buffer, so the probe transfers
/// to the store's install calls one-for-one.
uint64_t FindCorruptionSeed(double p, const std::vector<bool>& pattern) {
  for (uint64_t seed = 1; seed < 1000; ++seed) {
    FaultInjectorConfig cfg;
    cfg.corruption_probability = p;
    cfg.corruption_sites = {"storage.bit_flip"};
    cfg.seed = seed;
    FaultInjector probe(cfg);
    bool match = true;
    for (bool want : pattern) {
      std::string dummy(32, 'x');
      if (probe.MaybeCorrupt("storage.bit_flip", &dummy) != want) {
        match = false;
        break;
      }
    }
    if (match) return seed;
  }
  return 0;
}

class DhtIntegrityTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 10;

  explicit DhtIntegrityTest(DhtStoreOptions opts = {})
      : catalog_(MakeProteinCatalog()) {
    network_.set_fault_injector(&injector_);
    store_ = std::make_unique<DhtStore>(kNodes, &network_, &catalog_, opts);
    for (ParticipantId id = 1; id <= 3; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 3; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      ORCH_CHECK(store_->RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(std::make_unique<core::Participant>(
          id, &catalog_, *policies_.back()));
    }
  }

  core::Participant& P(size_t i) { return *participants_[i - 1]; }

  size_t TxnPrimary(const core::TransactionId& id) const {
    return store_->ring().OwnerOf(net::KeyHash("txn:" + id.ToString()));
  }

  void ArmBitFlip(double p, uint64_t seed) {
    FaultInjectorConfig cfg;
    cfg.corruption_probability = p;
    cfg.corruption_sites = {"storage.bit_flip"};
    cfg.seed = seed;
    injector_.Configure(cfg);
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  FaultInjector injector_;
  std::unique_ptr<DhtStore> store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<core::Participant>> participants_;
};

TEST_F(DhtIntegrityTest, ReadRepairHealsACorruptPrimary) {
  // Rot exactly the primary's copy at install time: the group installs
  // primary-first, so the pattern is {corrupt, clean, clean}.
  const uint64_t seed = FindCorruptionSeed(0.5, {true, false, false});
  ASSERT_NE(seed, 0u);
  ArmBitFlip(0.5, seed);
  auto id = P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());
  ASSERT_EQ(injector_.corrupted(), 1);
  injector_.Disable();

  const int64_t detected_before = CounterValue("integrity.corrupt_replica_reads");
  const int64_t repairs_before = CounterValue("integrity.read_repairs");
  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size() + report->deferred.size(), 1u);
  // The first read probed the rotten primary, failed over to a clean
  // backup, and healed the primary in place.
  EXPECT_GE(CounterValue("integrity.corrupt_replica_reads"),
            detected_before + 1);
  EXPECT_GE(CounterValue("integrity.read_repairs"), repairs_before + 1);
  DhtStore::ScrubReport scrub = store_->ScrubReplicas();
  EXPECT_GT(scrub.replicas_checked, 0);
  EXPECT_EQ(scrub.corrupt_found, 0);  // read-repair got there first
  EXPECT_EQ(scrub.unrecoverable, 0);
}

TEST_F(DhtIntegrityTest, ScrubFindsAndHealsRotBeforeAnyReaderTripsOnIt) {
  // Rot one backup replica (pattern {clean, corrupt, clean}): no read
  // prefers it, so only the scrub can find the rot.
  const uint64_t seed = FindCorruptionSeed(0.5, {false, true, false});
  ASSERT_NE(seed, 0u);
  ArmBitFlip(0.5, seed);
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());
  ASSERT_EQ(injector_.corrupted(), 1);
  injector_.Disable();

  DhtStore::ScrubReport scrub = store_->ScrubReplicas();
  EXPECT_GT(scrub.replicas_checked, 0);
  EXPECT_EQ(scrub.corrupt_found, 1);
  EXPECT_EQ(scrub.healed, 1);
  EXPECT_EQ(scrub.unrecoverable, 0);
  // Idempotent: a second pass finds nothing left to heal.
  DhtStore::ScrubReport again = store_->ScrubReplicas();
  EXPECT_EQ(again.corrupt_found, 0);
  EXPECT_EQ(again.healed, 0);

  const int64_t detected_before = CounterValue("integrity.corrupt_replica_reads");
  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size() + report->deferred.size(), 1u);
  EXPECT_EQ(CounterValue("integrity.corrupt_replica_reads"), detected_before);
}

TEST_F(DhtIntegrityTest, EveryReplicaRottenIsTypedDataLoss) {
  // p=1: all three installed copies rot. At-rest rot is persistent, so
  // no failover or retry can recover the transaction.
  ArmBitFlip(1.0, 7);
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());
  ASSERT_EQ(injector_.corrupted(), 3);
  injector_.Disable();

  const int64_t unrecoverable_before =
      CounterValue("integrity.unrecoverable_reads");
  auto report = P(2).Reconcile(store_.get());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss)
      << report.status().ToString();
  EXPECT_GE(CounterValue("integrity.unrecoverable_reads"),
            unrecoverable_before + 1);
  DhtStore::ScrubReport scrub = store_->ScrubReplicas();
  EXPECT_EQ(scrub.unrecoverable, 1);
  EXPECT_EQ(scrub.healed, 0);  // nothing verified to heal from
}

class QuarantineTest : public DhtIntegrityTest {
 protected:
  QuarantineTest()
      : DhtIntegrityTest([] {
          DhtStoreOptions opts;
          opts.quarantine_threshold = 1;
          return opts;
        }()) {}
};

TEST_F(QuarantineTest, ServingOneCorruptReplicaQuarantinesTheNode) {
  const uint64_t seed = FindCorruptionSeed(0.5, {true, false, false});
  ASSERT_NE(seed, 0u);
  ArmBitFlip(0.5, seed);
  auto id = P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());
  injector_.Disable();

  const size_t primary = TxnPrimary(*id);
  EXPECT_FALSE(store_->Quarantined(primary));
  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The primary served rot once; at threshold 1 it is demoted to the
  // back of every read preference until restart.
  EXPECT_TRUE(store_->Quarantined(primary));
  for (size_t node = 0; node < kNodes; ++node) {
    if (node != primary) {
      EXPECT_FALSE(store_->Quarantined(node));
    }
  }
  // Demotion only reorders probes: the healed data still reads fine.
  auto again = P(3).Reconcile(store_.get());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->accepted.size() + again->deferred.size(), 1u);
}

class UnverifiedDhtTest : public DhtIntegrityTest {
 protected:
  UnverifiedDhtTest()
      : DhtIntegrityTest([] {
          DhtStoreOptions opts;
          opts.verify_checksums = false;
          return opts;
        }()) {}
};

TEST_F(UnverifiedDhtTest, ControlArmConsumesRotUndetected) {
  ArmBitFlip(1.0, 7);
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());
  ASSERT_EQ(injector_.corrupted(), 3);
  injector_.Disable();

  const int64_t undetected_before =
      CounterValue("integrity.unverified_corrupt_reads");
  const int64_t repairs_before = CounterValue("integrity.read_repairs");
  // With verification off the read neither fails over nor heals — the
  // rot flows to the reader, and only the accounting ledger (the strict
  // check still computed) records what a checksummed deployment would
  // have caught.
  (void)P(2).Reconcile(store_.get());
  EXPECT_GE(CounterValue("integrity.unverified_corrupt_reads"),
            undetected_before + 1);
  EXPECT_EQ(CounterValue("integrity.read_repairs"), repairs_before);
}

class CentralIntegrityTest : public ::testing::Test {
 protected:
  // kFull keeps the at-rest read path hot: under kDelta the publish
  // pre-admits the batch to the decoded-transaction arena, and the rows
  // these tests corrupt would never be read back from the engine.
  static CentralStoreOptions FullFetchOptions() {
    CentralStoreOptions opts;
    opts.fetch_mode = core::FetchMode::kFull;
    return opts;
  }

  explicit CentralIntegrityTest(CentralStoreOptions opts = FullFetchOptions())
      : catalog_(MakeProteinCatalog()) {
    engine_ = storage::StorageEngine::InMemory();
    engine_->set_fault_injector(&injector_);
    store_ = std::make_unique<CentralStore>(engine_.get(), &network_, opts);
    for (ParticipantId id = 1; id <= 2; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      policy->TrustPeer(id == 1 ? 2 : 1, 1);
      ORCH_CHECK(store_->RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(std::make_unique<core::Participant>(
          id, &catalog_, *policies_.back()));
    }
  }

  core::Participant& P(size_t i) { return *participants_[i - 1]; }

  void ArmBitFlip(double p, uint64_t seed) {
    FaultInjectorConfig cfg;
    cfg.corruption_probability = p;
    cfg.corruption_sites = {"storage.bit_flip"};
    cfg.seed = seed;
    injector_.Configure(cfg);
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  FaultInjector injector_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<CentralStore> store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<core::Participant>> participants_;
};

TEST_F(CentralIntegrityTest, CorruptRowReadIsDetectedAndReRead) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());

  // The central store's rot is per read (the re-read models fetching
  // the page from the RDBMS's redundant storage): corrupt the first row
  // read of the reconciliation, leave every later draw clean.
  const uint64_t seed = FindCorruptionSeed(
      0.5, {true, false, false, false, false, false, false, false});
  ASSERT_NE(seed, 0u);
  ArmBitFlip(0.5, seed);

  const int64_t detected_before = CounterValue("integrity.corrupt_rows_detected");
  const int64_t rereads_before = CounterValue("integrity.row_rereads");
  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size() + report->deferred.size(), 1u);
  EXPECT_EQ(CounterValue("integrity.corrupt_rows_detected"),
            detected_before + 1);
  EXPECT_EQ(CounterValue("integrity.row_rereads"), rereads_before + 1);
}

TEST_F(CentralIntegrityTest, RowRottenOnEveryReadIsTypedDataLoss) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());

  ArmBitFlip(1.0, 7);  // every read attempt rots: re-reads exhaust
  auto report = P(2).Reconcile(store_.get());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss)
      << report.status().ToString();

  // Disarming models the rot having been transient: the same fetch now
  // succeeds — nothing in the store itself was damaged.
  injector_.Disable();
  auto healed = P(2).Reconcile(store_.get());
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->accepted.size() + healed->deferred.size(), 1u);
}

// Satellite (a): replay of a WAL whose corrupt region swallowed decision
// log rows must surface typed data loss on recovery, not silently
// resume from a marker that vouches for decisions that no longer exist.
TEST(CentralDeclogIntegrityTest, TruncatedDecisionLogIsTypedDataLoss) {
  db::Catalog catalog = MakeProteinCatalog();
  net::SimNetwork network;
  const std::string wal_path =
      (std::filesystem::temp_directory_path() /
       ("declog_integrity_" + std::to_string(::getpid()) + ".wal"))
          .string();
  std::remove(wal_path.c_str());

  std::vector<std::unique_ptr<TrustPolicy>> policies;
  for (ParticipantId id = 1; id <= 2; ++id) {
    auto policy = std::make_unique<TrustPolicy>(id);
    policy->TrustPeer(id == 1 ? 2 : 1, 1);
    policies.push_back(std::move(policy));
  }

  Transaction a = Txn(1, 0, {Ins("rat", "p1", "a", 1)});
  Transaction b = Txn(1, 1, {Ins("rat", "p2", "b", 1)});
  {
    auto engine = storage::StorageEngine::OpenDurable(wal_path);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    CentralStore store(engine->get(), &network);
    ASSERT_TRUE(store.RegisterParticipant(1, policies[0].get()).ok());
    ASSERT_TRUE(store.RegisterParticipant(2, policies[1].get()).ok());
    ASSERT_TRUE(store.Publish(1, {a, b}).ok());
    auto fetch = store.BeginReconciliation(2);
    ASSERT_TRUE(fetch.ok());
    ASSERT_TRUE(
        store.RecordDecisions(2, fetch->recno, {a.id, b.id}, {}).ok());
    ASSERT_TRUE(store.FetchRecoveryState(2).ok());
  }

  // Flip a bit inside the first declog Put record. Replay detects the
  // broken envelope, skips the region, and resyncs at the next record —
  // the decision row is gone but the decmeta marker (written later, in
  // an intact record) survives.
  std::string contents;
  {
    std::ifstream in(wal_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  const size_t at = contents.find("declog:2");
  ASSERT_NE(at, std::string::npos);
  contents[at] ^= 0x01;
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }

  auto engine = storage::StorageEngine::OpenDurable(wal_path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  CentralStore store(engine->get(), &network);
  ASSERT_TRUE(store.RegisterParticipant(1, policies[0].get()).ok());
  ASSERT_TRUE(store.RegisterParticipant(2, policies[1].get()).ok());
  auto bundle = store.FetchRecoveryState(2);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bundle.status().message().find("lost 1 of 2"),
            std::string::npos)
      << bundle.status().ToString();
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace orchestra::store
