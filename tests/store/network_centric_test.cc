// Network-centric reconciliation (§5, Fig. 3): the update store computes
// transaction extensions, flattening, and conflict detection, and ships
// the analysis to the client. These tests verify the mode is
// decision-equivalent to client-centric reconciliation on both stores
// and that the cost split moves in the advertised direction.
#include <gtest/gtest.h>

#include "core/participant.h"
#include "net/sim_network.h"
#include "sim/cdss.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Participant;
using core::ParticipantId;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;
using sim::Cdss;
using sim::CdssConfig;
using sim::StoreKind;

TEST(NetworkCentricTest, RequiresCatalog) {
  db::Catalog catalog = MakeProteinCatalog();
  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  CentralStore store(engine.get(), &network);  // no catalog
  TrustPolicy policy(1);
  ASSERT_TRUE(store.RegisterParticipant(1, &policy).ok());
  Participant p(1, &catalog, policy);
  EXPECT_EQ(p.ReconcileNetworkCentric(&store).status().code(),
            StatusCode::kNotSupported);
}

class NetworkCentricModeTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(NetworkCentricModeTest, BasicFlowAndDeferral) {
  db::Catalog catalog = MakeProteinCatalog();
  net::SimNetwork network;
  std::unique_ptr<storage::StorageEngine> engine;
  std::unique_ptr<core::UpdateStore> store;
  if (GetParam() == StoreKind::kCentral) {
    engine = storage::StorageEngine::InMemory();
    store = std::make_unique<CentralStore>(engine.get(), &network,
                                           CentralStoreOptions{}, &catalog);
  } else {
    store = std::make_unique<DhtStore>(3, &network, &catalog);
  }
  std::vector<std::unique_ptr<TrustPolicy>> policies;
  std::vector<std::unique_ptr<Participant>> peers;
  for (ParticipantId id = 0; id < 3; ++id) {
    auto policy = std::make_unique<TrustPolicy>(id);
    for (ParticipantId other = 0; other < 3; ++other) {
      if (other != id) policy->TrustPeer(other, 1);
    }
    ASSERT_TRUE(store->RegisterParticipant(id, policy.get()).ok());
    policies.push_back(std::move(policy));
    peers.push_back(
        std::make_unique<Participant>(id, &catalog, *policies.back()));
  }

  // Simple propagation with a revision chain.
  ASSERT_TRUE(peers[0]->ExecuteTransaction({Ins("rat", "p1", "a", 0)}).ok());
  ASSERT_TRUE(peers[0]->Publish(store.get()).ok());
  ASSERT_TRUE(peers[1]->ReconcileNetworkCentric(store.get()).ok());
  ASSERT_TRUE(
      peers[1]->ExecuteTransaction({Mod("rat", "p1", "a", "b", 1)}).ok());
  ASSERT_TRUE(peers[1]->Publish(store.get()).ok());
  auto report = peers[2]->ReconcileNetworkCentric(store.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size(), 2u);
  EXPECT_TRUE(InstanceHasExactly(peers[2]->instance(), {T({"rat", "p1", "b"})}));

  // Conflict deferral works through the network-computed analysis.
  ASSERT_TRUE(peers[0]->ExecuteTransaction({Ins("rat", "p9", "x", 0)}).ok());
  ASSERT_TRUE(peers[0]->Publish(store.get()).ok());
  ASSERT_TRUE(peers[1]->ExecuteTransaction({Ins("rat", "p9", "y", 1)}).ok());
  ASSERT_TRUE(peers[1]->Publish(store.get()).ok());
  report = peers[2]->ReconcileNetworkCentric(store.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deferred.size(), 2u);
  EXPECT_EQ(peers[2]->pending_conflicts().size(), 1u);

  // And the deferred backlog is reconsidered on the next NC reconcile.
  report = peers[2]->ReconcileNetworkCentric(store.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reconsidered, 2u);
  EXPECT_EQ(report->deferred.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(BothStores, NetworkCentricModeTest,
                         ::testing::Values(StoreKind::kCentral,
                                           StoreKind::kDht),
                         [](const ::testing::TestParamInfo<StoreKind>& info) {
                           return info.param == StoreKind::kCentral
                                      ? "Central"
                                      : "Dht";
                         });

using EquivalenceParam = std::tuple<StoreKind, size_t /*txn size*/>;

class NetworkCentricEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(NetworkCentricEquivalenceTest, SameDecisionsAsClientCentric) {
  // The two modes split the work differently but must produce identical
  // instances and decision counts on identical schedules.
  CdssConfig config;
  config.participants = 5;
  config.store = std::get<0>(GetParam());
  config.transaction_size = std::get<1>(GetParam());
  config.txns_between_recons = 3;
  config.rounds = 3;
  config.seed = 77;
  config.workload.key_pool = 150;
  config.workload.key_zipf_s = 1.0;

  CdssConfig nc_config = config;
  nc_config.network_centric = true;

  auto cc = Cdss::Make(config);
  auto nc = Cdss::Make(nc_config);
  ASSERT_TRUE(cc.ok());
  ASSERT_TRUE(nc.ok());
  auto cc_result = (*cc)->Run();
  auto nc_result = (*nc)->Run();
  ASSERT_TRUE(cc_result.ok()) << cc_result.status().ToString();
  ASSERT_TRUE(nc_result.ok()) << nc_result.status().ToString();

  EXPECT_EQ(cc_result->accepted, nc_result->accepted);
  EXPECT_EQ(cc_result->rejected, nc_result->rejected);
  EXPECT_EQ(cc_result->deferred, nc_result->deferred);
  EXPECT_DOUBLE_EQ(cc_result->state_ratio, nc_result->state_ratio);
  for (size_t i = 0; i < (*cc)->participant_count(); ++i) {
    EXPECT_TRUE((*cc)->participant(i).instance() ==
                (*nc)->participant(i).instance())
        << "peer " << i << " diverged between modes";
  }
  // The whole point of the trade: network-centric sends more data.
  EXPECT_GT(nc_result->bytes, cc_result->bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkCentricEquivalenceTest,
    ::testing::Combine(::testing::Values(StoreKind::kCentral,
                                         StoreKind::kDht),
                       ::testing::Values<size_t>(1, 3)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      return std::string(std::get<0>(info.param) == StoreKind::kCentral
                             ? "Central"
                             : "Dht") +
             "_size" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace orchestra::store
