// Durable provenance: CentralStore::RecordProvenance writes one
// CRC-enveloped JSON row per record into the per-peer "prov:<peer>"
// table, keyed so a prefix scan replays them in decision order. The
// advisory contract under faults: a failed Put never fails the call
// (the decision log stays authoritative), but the drop is counted.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "db/serde.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"

namespace orchestra::store {
namespace {

using core::Decision;
using core::ProvenanceCause;
using core::ProvenanceRecord;

ProvenanceRecord MakeRecord(core::ParticipantId peer, int64_t recno,
                            uint64_t seq) {
  ProvenanceRecord rec;
  rec.peer = peer;
  rec.recno = recno;
  rec.epoch = 3;
  rec.txn = core::TransactionId{2, seq};
  rec.priority = 1;
  rec.verdict = Decision::kAccept;
  rec.cause = ProvenanceCause::kCleanAccept;
  return rec;
}

class ProvenancePersistTest : public ::testing::Test {
 protected:
  ProvenancePersistTest()
      : engine_(storage::StorageEngine::InMemory()),
        store_(std::make_unique<CentralStore>(engine_.get(), &network_)) {}

  std::unique_ptr<storage::StorageEngine> engine_;
  net::SimNetwork network_;
  std::unique_ptr<CentralStore> store_;
  FaultInjector injector_;
};

TEST_F(ProvenancePersistTest, RowsRoundTripThroughEnvelopes) {
  std::vector<ProvenanceRecord> records;
  for (uint64_t i = 0; i < 3; ++i) records.push_back(MakeRecord(7, 4, i));
  ASSERT_TRUE(store_->RecordProvenance(7, 4, records).ok());

  const auto rows = engine_->ScanPrefix("prov:7", "");
  ASSERT_EQ(rows.size(), 3u);
  for (size_t i = 0; i < rows.size(); ++i) {
    auto payload =
        db::UnwrapEnvelope(rows[i].second, db::EnvelopePolicy::kRequireFrame);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    EXPECT_EQ(*payload, records[i].ToJson());
  }
}

TEST_F(ProvenancePersistTest, KeysScanInDecisionOrder) {
  // Recnos 2 then 10: zero-padded keys must sort numerically, and the
  // per-record index must keep within-batch order for >10 records.
  std::vector<ProvenanceRecord> early;
  for (uint64_t i = 0; i < 12; ++i) early.push_back(MakeRecord(5, 2, i));
  ASSERT_TRUE(store_->RecordProvenance(5, 2, early).ok());
  ASSERT_TRUE(
      store_->RecordProvenance(5, 10, {MakeRecord(5, 10, 99)}).ok());

  const auto rows = engine_->ScanPrefix("prov:5", "");
  ASSERT_EQ(rows.size(), 13u);
  std::vector<std::string> payloads;
  for (const auto& [key, value] : rows) {
    auto payload =
        db::UnwrapEnvelope(value, db::EnvelopePolicy::kRequireFrame);
    ASSERT_TRUE(payload.ok());
    payloads.emplace_back(*payload);
  }
  for (uint64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(payloads[i], MakeRecord(5, 2, i).ToJson()) << i;
  }
  EXPECT_EQ(payloads[12], MakeRecord(5, 10, 99).ToJson());
}

TEST_F(ProvenancePersistTest, EmptyBatchWritesNothing) {
  ASSERT_TRUE(store_->RecordProvenance(3, 1, {}).ok());
  EXPECT_TRUE(engine_->ScanPrefix("prov:3", "").empty());
}

TEST_F(ProvenancePersistTest, PutFailureIsAdvisoryAndCounted) {
  static Counter& drops =
      MetricsRegistry::Global().GetCounter("store.central.provenance_drops");
  const int64_t drops_before = drops.value();

  engine_->set_fault_injector(&injector_);
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 2;  // second storage.put in the batch fails
  cfg.site_prefix = "storage.put";
  injector_.Configure(cfg);

  std::vector<ProvenanceRecord> records;
  for (uint64_t i = 0; i < 4; ++i) records.push_back(MakeRecord(9, 1, i));
  // Advisory: the call reports OK even though rows 2..4 were dropped.
  ASSERT_TRUE(store_->RecordProvenance(9, 1, records).ok());
  EXPECT_EQ(drops.value() - drops_before, 3);
  EXPECT_EQ(engine_->ScanPrefix("prov:9", "").size(), 1u);
}

TEST_F(ProvenancePersistTest, DhtKeepsANodeLocalLog) {
  DhtStore dht(8, &network_);
  std::vector<ProvenanceRecord> records = {MakeRecord(4, 1, 0),
                                           MakeRecord(4, 1, 1)};
  ASSERT_TRUE(dht.RecordProvenance(4, 1, records).ok());
  ASSERT_TRUE(dht.RecordProvenance(4, 2, {MakeRecord(4, 2, 2)}).ok());
  const auto& log = dht.provenance_log(4);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(core::ToJsonLines(log),
            records[0].ToJson() + "\n" + records[1].ToJson() + "\n" +
                MakeRecord(4, 2, 2).ToJson() + "\n");
  EXPECT_TRUE(dht.provenance_log(1).empty());
}

}  // namespace
}  // namespace orchestra::store
