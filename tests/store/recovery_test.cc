// Crash-recovery conformance (§5.2): a participant holds only soft
// state — everything up to its last reconciliation is reconstructible
// from the update store. Run against both store implementations.
#include <gtest/gtest.h>

#include <memory>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Participant;
using core::ParticipantId;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;

enum class Kind { kCentral, kDht };

class RecoveryTest : public ::testing::TestWithParam<Kind> {
 protected:
  RecoveryTest() : catalog_(MakeProteinCatalog()) {
    if (GetParam() == Kind::kCentral) {
      engine_ = storage::StorageEngine::InMemory();
      store_ = std::make_unique<CentralStore>(engine_.get(), &network_);
    } else {
      store_ = std::make_unique<DhtStore>(4, &network_);
    }
    for (ParticipantId id = 1; id <= 4; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 4; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      ORCH_CHECK(store_->RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(std::make_unique<Participant>(
          id, &catalog_, *policies_.back()));
    }
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  TrustPolicy PolicyFor(ParticipantId id) {
    TrustPolicy policy(id);
    for (ParticipantId other = 1; other <= 4; ++other) {
      if (other != id) policy.TrustPeer(other, 1);
    }
    return policy;
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<core::UpdateStore> store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_P(RecoveryTest, FreshParticipantRecoversEmpty) {
  auto recovered = Participant::RecoverFromStore(1, &catalog_, PolicyFor(1),
                                                 store_.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->instance().TotalTuples(), 0u);
  EXPECT_EQ((*recovered)->applied_count(), 0u);
}

TEST_P(RecoveryTest, InstanceAndDecisionsRebuilt) {
  // Build up state: own work, imported work, a rejection.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "own", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("mouse", "p2", "theirs", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(3).ExecuteTransaction({Ins("rat", "p1", "clash", 3)}).ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(store_.get()).ok());
  auto report = P(1).Reconcile(store_.get());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->accepted.size(), 1u);  // mouse
  ASSERT_EQ(report->rejected.size(), 1u);  // clash vs own rat tuple

  auto recovered = Participant::RecoverFromStore(1, &catalog_, PolicyFor(1),
                                                 store_.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->instance() == P(1).instance());
  EXPECT_EQ((*recovered)->applied_count(), P(1).applied_count());
  EXPECT_EQ((*recovered)->rejected_count(), P(1).rejected_count());
}

TEST_P(RecoveryTest, DeferredBacklogSurvivesRecovery) {
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "a", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(3).ExecuteTransaction({Ins("rat", "p1", "b", 3)}).ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(1).Reconcile(store_.get()).ok());
  ASSERT_EQ(P(1).deferred_count(), 2u);
  ASSERT_EQ(P(1).pending_conflicts().size(), 1u);

  auto recovered = Participant::RecoverFromStore(1, &catalog_, PolicyFor(1),
                                                 store_.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->deferred_count(), 2u);
  ASSERT_EQ((*recovered)->pending_conflicts().size(), 1u);
  EXPECT_EQ((*recovered)->pending_conflicts()[0].options.size(), 2u);

  // The recovered participant can resolve the conflict normally.
  auto resolved = (*recovered)->ResolveConflict(store_.get(), 0, 0);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*recovered)->deferred_count(), 0u);
  EXPECT_EQ((*recovered)->instance().TotalTuples(), 1u);
}

TEST_P(RecoveryTest, RecoveredTwinBehavesIdentically) {
  // After recovery, the participant and its never-crashed twin must make
  // the same decisions on future input.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).Reconcile(store_.get()).ok());

  auto recovered = Participant::RecoverFromStore(2, &catalog_, PolicyFor(2),
                                                 store_.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // New work arrives: a revision of the imported tuple.
  ASSERT_TRUE(P(1).ExecuteTransaction({Mod("rat", "p1", "x", "y", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());

  auto twin_report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(twin_report.ok());
  // The recovered copy sees the same epoch range... but P(2) already
  // consumed it; instead compare the recovered copy against the twin's
  // decisions by reconciling it too (the store tracked both as peer 2,
  // so the watermark advanced; the recovered copy reconciles and gets
  // nothing new, stays consistent).
  auto rec_report = (*recovered)->Reconcile(store_.get());
  ASSERT_TRUE(rec_report.ok());
  // Both end in a consistent state for the shared key.
  auto twin_table = P(2).instance().GetTable("F");
  ASSERT_TRUE(twin_table.ok());
  EXPECT_TRUE((*twin_table)->ContainsTuple(T({"rat", "p1", "y"})));
}

TEST_P(RecoveryTest, RevisionChainsReplayInOrder) {
  // p1 inserts, p2 revises, p3 revises again; p4 imports the chain, then
  // recovers — the replay must honor publication order.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "v1", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).Reconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Mod("rat", "p1", "v1", "v2", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(3).Reconcile(store_.get()).ok());
  ASSERT_TRUE(P(3).ExecuteTransaction({Mod("rat", "p1", "v2", "v3", 3)}).ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(4).Reconcile(store_.get()).ok());
  ASSERT_TRUE(InstanceHasExactly(P(4).instance(), {T({"rat", "p1", "v3"})}));

  auto recovered = Participant::RecoverFromStore(4, &catalog_, PolicyFor(4),
                                                 store_.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(
      InstanceHasExactly((*recovered)->instance(), {T({"rat", "p1", "v3"})}));
}

TEST_P(RecoveryTest, UnregisteredPeerFails) {
  TrustPolicy policy(99);
  EXPECT_FALSE(
      Participant::RecoverFromStore(99, &catalog_, policy, store_.get())
          .ok());
}

INSTANTIATE_TEST_SUITE_P(AllStores, RecoveryTest,
                         ::testing::Values(Kind::kCentral, Kind::kDht),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return info.param == Kind::kCentral ? "Central"
                                                               : "Dht";
                         });

}  // namespace
}  // namespace orchestra::store
