// Replica groups in the DHT store: writes fan out to the key's k live
// successors, reads fail over past crashed replicas, membership events
// re-replicate so the placement invariant always holds, and k=1
// genuinely loses data on a crash — the property that makes the
// replication layer load-bearing rather than decorative.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/participant.h"
#include "net/sim_network.h"
#include "store/dht_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::ParticipantId;
using core::Transaction;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Txn;

class ReplicationTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 10;

  explicit ReplicationTest(size_t replication_factor = 3)
      : catalog_(MakeProteinCatalog()) {
    DhtStoreOptions opts;
    opts.replication_factor = replication_factor;
    store_ = std::make_unique<DhtStore>(kNodes, &network_, &catalog_, opts);
    for (ParticipantId id = 1; id <= 3; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 3; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      ORCH_CHECK(store_->RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(
          std::make_unique<core::Participant>(id, &catalog_, *policies_.back()));
    }
  }

  core::Participant& P(size_t i) { return *participants_[i - 1]; }

  /// The ring node holding the primary copy of transaction `id`.
  size_t TxnPrimary(const core::TransactionId& id) const {
    return store_->ring().OwnerOf(net::KeyHash("txn:" + id.ToString()));
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<DhtStore> store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<core::Participant>> participants_;
};

TEST_F(ReplicationTest, PublishEstablishesReplicaInvariant) {
  for (int i = 0; i < 5; ++i) {
    Transaction txn = Txn(1, static_cast<uint64_t>(i),
                          {Ins("rat", ("p" + std::to_string(i)).c_str(),
                               "fn", 1)});
    ASSERT_TRUE(store_->Publish(1, {txn}).ok());
  }
  EXPECT_TRUE(store_->CheckReplicationInvariant());
}

TEST_F(ReplicationTest, ReadsFailOverPastCrashedPrimary) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  auto id = P(1).ExecuteTransaction({Ins("rat", "p2", "y", 1)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());

  // Kill the transaction's primary replica and skip the immediate
  // repair: the degraded window where only the backups hold the data.
  ASSERT_TRUE(store_->CrashNode(TxnPrimary(*id), /*repair=*/false).ok());

  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size() + report->deferred.size(), 2u);
  // Repairing afterwards restores full-strength groups.
  store_->RepairReplication();
  EXPECT_TRUE(store_->CheckReplicationInvariant());
}

TEST_F(ReplicationTest, CrashRepairJoinCycleKeepsDecisionsFlowing) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());
  ASSERT_TRUE(store_->CrashNode(2).ok());  // default: immediate repair
  EXPECT_TRUE(store_->CheckReplicationInvariant());
  EXPECT_EQ(store_->live_node_count(), kNodes - 1);

  auto joined = store_->JoinNode();
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(store_->CheckReplicationInvariant());
  EXPECT_EQ(store_->live_node_count(), kNodes);

  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p2", "y", 2)}).ok());
  ASSERT_TRUE(P(2).Publish(store_.get()).ok());
  auto report = P(3).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size() + report->deferred.size(), 2u);
  EXPECT_TRUE(store_->CheckReplicationInvariant());
}

TEST_F(ReplicationTest, EveryNodeCanCrashOnceWithoutLosingAnything) {
  for (ParticipantId p = 1; p <= 3; ++p) {
    ASSERT_TRUE(
        P(p).ExecuteTransaction(
                {Ins("rat", ("pp" + std::to_string(p)).c_str(), "v", p)})
            .ok());
    ASSERT_TRUE(P(p).Publish(store_.get()).ok());
  }
  // Roll a crash across half the ring, one node at a time with repair
  // in between (k=3 tolerates any single-node loss per event).
  for (size_t node = 0; node < kNodes / 2; ++node) {
    ASSERT_TRUE(store_->CrashNode(node).ok());
    ASSERT_TRUE(store_->CheckReplicationInvariant()) << "node " << node;
  }
  for (ParticipantId p = 1; p <= 3; ++p) {
    auto report = P(p).Reconcile(store_.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
}

// k=1 variants: replication off, so the store is back to the frozen-ring
// behavior plus membership — and crashes must genuinely lose data.
class NoReplicationTest : public ReplicationTest {
 protected:
  NoReplicationTest() : ReplicationTest(/*replication_factor=*/1) {}
};

TEST_F(NoReplicationTest, CrashLosesDataWithoutReplication) {
  auto id = P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());

  // The transaction controller's only copy dies with its node.
  ASSERT_TRUE(store_->CrashNode(TxnPrimary(*id)).ok());

  auto report = P(2).Reconcile(store_.get());
  // Either the epoch record also died (nothing fetched: silent loss) or
  // the fetch trips over the missing transaction (hard loss). Both are
  // data loss; neither can happen with k=3.
  if (report.ok()) {
    EXPECT_EQ(report->accepted.size() + report->deferred.size(), 0u);
  } else {
    EXPECT_EQ(report.status().code(), StatusCode::kDataLoss)
        << report.status().ToString();
  }
}

TEST_F(NoReplicationTest, GracefulLeaveLosesNothingEvenWithoutReplication) {
  auto id = P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(P(1).Publish(store_.get()).ok());

  // A cooperative departure hands its key ranges off first.
  ASSERT_TRUE(store_->LeaveNode(TxnPrimary(*id)).ok());
  EXPECT_TRUE(store_->CheckReplicationInvariant());

  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted.size() + report->deferred.size(), 1u);
}

}  // namespace
}  // namespace orchestra::store
