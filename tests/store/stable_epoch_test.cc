// §5.2.1: publishing is decoupled from reconciliation — a reconciling
// peer uses "the latest epoch not preceded by an 'unfinished' epoch".
// White-box test: inject an open (unfinished) epoch directly into the
// storage engine between two finished ones and verify the reconciliation
// window stops before it, then resumes once the epoch completes.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Participant;
using core::ParticipantId;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::T;

std::string EpochKey(int64_t epoch) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016lld", static_cast<long long>(epoch));
  return buf;
}

TEST(StableEpochTest, OpenEpochBlocksLaterEpochs) {
  db::Catalog catalog = MakeProteinCatalog();
  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  CentralStore store(engine.get(), &network);

  TrustPolicy p1(1);
  p1.TrustPeer(2, 1);
  TrustPolicy p2(2);
  ASSERT_TRUE(store.RegisterParticipant(1, &p1).ok());
  ASSERT_TRUE(store.RegisterParticipant(2, &p2).ok());
  Participant alice(1, &catalog, p1);
  Participant bob(2, &catalog, p2);

  // Epoch 1: published and finished.
  ASSERT_TRUE(bob.ExecuteTransaction({Ins("rat", "p1", "first", 2)}).ok());
  ASSERT_TRUE(bob.Publish(&store).ok());

  // Epoch 2: simulate a publisher that started but has not finished —
  // allocate the sequence and leave the epoch open, exactly the state a
  // slow concurrent publisher would leave behind.
  ASSERT_TRUE(engine->NextSequence("epoch").ok());
  ASSERT_TRUE(engine->Put("epochs", EpochKey(2), "open").ok());

  // Epoch 3: bob publishes more (finished).
  ASSERT_TRUE(bob.ExecuteTransaction({Ins("rat", "p3", "third", 2)}).ok());
  ASSERT_TRUE(bob.Publish(&store).ok());

  // Alice reconciles: the stable window is epoch 1 only — epoch 3 is
  // "after" the unfinished epoch 2 and must not be visible yet.
  auto r1 = alice.Reconcile(&store);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->epoch, 1);
  EXPECT_EQ(r1->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(alice.instance(), {T({"rat", "p1", "first"})}));

  // Reconciling again while the epoch is still open gains nothing.
  auto r2 = alice.Reconcile(&store);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->fetched, 0u);

  // The slow publisher finishes; the window now extends through epoch 3.
  ASSERT_TRUE(engine->Put("epochs", EpochKey(2), "done").ok());
  auto r3 = alice.Reconcile(&store);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->epoch, 3);
  EXPECT_EQ(r3->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(
      alice.instance(),
      {T({"rat", "p1", "first"}), T({"rat", "p3", "third"})}));
}

TEST(StableEpochTest, WatermarkNeverMovesBackwards) {
  db::Catalog catalog = MakeProteinCatalog();
  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  CentralStore store(engine.get(), &network);
  TrustPolicy p1(1);
  p1.TrustPeer(2, 1);
  TrustPolicy p2(2);
  ASSERT_TRUE(store.RegisterParticipant(1, &p1).ok());
  ASSERT_TRUE(store.RegisterParticipant(2, &p2).ok());
  Participant alice(1, &catalog, p1);
  Participant bob(2, &catalog, p2);

  int64_t last_epoch = 0;
  for (int round = 0; round < 4; ++round) {
    const std::string protein = "p" + std::to_string(round);
    ASSERT_TRUE(
        bob.ExecuteTransaction({Ins("rat", protein.c_str(), "fn", 2)}).ok());
    ASSERT_TRUE(bob.Publish(&store).ok());
    auto report = alice.Reconcile(&store);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->epoch, last_epoch);
    last_epoch = report->epoch;
    EXPECT_EQ(report->fetched, 1u);  // exactly the new epoch's content
  }
}

}  // namespace
}  // namespace orchestra::store
