// Conformance suite run against BOTH update-store implementations
// (central RDBMS-style and distributed DHT-based): the reconciliation
// semantics must not depend on which store backs the confederation.
#include <gtest/gtest.h>

#include <memory>

#include "core/participant.h"
#include "core/update_store.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "test_util.h"

namespace orchestra::store {
namespace {

using core::Epoch;
using core::ParticipantId;
using core::Transaction;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;
using orchestra::testing::Txn;

enum class Kind { kCentral, kDht };

class StoreConformanceTest : public ::testing::TestWithParam<Kind> {
 protected:
  StoreConformanceTest() : catalog_(MakeProteinCatalog()) {
    if (GetParam() == Kind::kCentral) {
      engine_ = storage::StorageEngine::InMemory();
      store_ = std::make_unique<CentralStore>(engine_.get(), &network_);
    } else {
      store_ = std::make_unique<DhtStore>(4, &network_);
    }
    for (ParticipantId id = 1; id <= 4; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 4; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      ORCH_CHECK(store_->RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(std::make_unique<core::Participant>(
          id, &catalog_, *policies_.back()));
    }
  }

  core::Participant& P(size_t i) { return *participants_[i - 1]; }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<core::UpdateStore> store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<core::Participant>> participants_;
};

TEST_P(StoreConformanceTest, PublishAllocatesIncreasingEpochs) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  auto e1 = P(1).Publish(store_.get());
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p2", "y", 2)}).ok());
  auto e2 = P(2).Publish(store_.get());
  ASSERT_TRUE(e2.ok());
  EXPECT_GT(*e1, 0);
  EXPECT_LT(*e1, *e2);
}

TEST_P(StoreConformanceTest, DuplicatePublishRejected) {
  Transaction txn = Txn(1, 0, {Ins("rat", "p1", "x", 1)});
  ASSERT_TRUE(store_->Publish(1, {txn}).ok());
  EXPECT_EQ(store_->Publish(1, {txn}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_P(StoreConformanceTest, UpdatesPropagate) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  auto report = P(2).Reconcile(store_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "x"})}));
}

TEST_P(StoreConformanceTest, TransactionsDeliveredAtMostOnce) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  auto r1 = P(2).Reconcile(store_.get());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->fetched, 1u);
  auto r2 = P(2).Reconcile(store_.get());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->fetched, 0u);
}

TEST_P(StoreConformanceTest, OwnTransactionsNeverReturned) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  auto report = P(1).PublishAndReconcile(store_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fetched, 0u);
}

TEST_P(StoreConformanceTest, UntrustedTransactionsFiltered) {
  // Peer 4 whose policy trusts nobody: register a fresh participant.
  auto lonely_policy = std::make_unique<TrustPolicy>(9);
  ASSERT_TRUE(store_->RegisterParticipant(9, lonely_policy.get()).ok());
  core::Participant lonely(9, &catalog_, *lonely_policy);

  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  auto report = lonely.Reconcile(store_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fetched, 0u);
  EXPECT_TRUE(InstanceHasExactly(lonely.instance(), {}));
}

TEST_P(StoreConformanceTest, AntecedentClosureDelivered) {
  // p1 inserts; p2 revises; p3 reconciles only after both published —
  // the revision's antecedent must arrive with it.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).Reconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Mod("rat", "p1", "a", "b", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(3).Reconcile(store_.get()).ok());
  EXPECT_TRUE(InstanceHasExactly(P(3).instance(), {T({"rat", "p1", "b"})}));
}

TEST_P(StoreConformanceTest, DecisionsPreventRedelivery) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "mine", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "other", 2)}).ok());
  auto r1 = P(2).PublishAndReconcile(store_.get());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->rejected.size(), 1u);
  // p1 publishes something new; p2's next reconcile must not resend the
  // rejected transaction.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("mouse", "p2", "y", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  auto r2 = P(2).Reconcile(store_.get());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->fetched, 1u);
  EXPECT_EQ(r2->accepted.size(), 1u);
}

TEST_P(StoreConformanceTest, StatsChargeTheRequestingPeer) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(store_.get()).ok());
  ASSERT_TRUE(P(2).Reconcile(store_.get()).ok());
  EXPECT_GT(store_->StatsFor(1).messages, 0);
  EXPECT_GT(store_->StatsFor(2).messages, 0);
  EXPECT_EQ(store_->StatsFor(3).messages, 0);
}

TEST_P(StoreConformanceTest, ManyPeersConvergeOnNonConflictingData) {
  for (size_t i = 1; i <= 4; ++i) {
    const std::string protein = "p" + std::to_string(i);
    ASSERT_TRUE(P(i).ExecuteTransaction(
                        {Ins("rat", protein.c_str(), "fn",
                             static_cast<ParticipantId>(i))})
                    .ok());
    ASSERT_TRUE(P(i).PublishAndReconcile(store_.get()).ok());
  }
  // One more reconcile round so early publishers see late ones.
  for (size_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(P(i).Reconcile(store_.get()).ok());
  }
  for (size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ((*P(i).instance().GetTable("F"))->size(), 4u)
        << "peer " << i << " missing tuples";
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreConformanceTest,
                         ::testing::Values(Kind::kCentral, Kind::kDht),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           return info.param == Kind::kCentral ? "Central"
                                                               : "Dht";
                         });

}  // namespace
}  // namespace orchestra::store
