#ifndef ORCHESTRA_TESTS_TEST_UTIL_H_
#define ORCHESTRA_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "db/instance.h"
#include "db/schema.h"
#include "core/transaction.h"
#include "core/update.h"

namespace orchestra::testing {

/// F(organism, protein, function) with key (organism, protein) — the
/// relation of the paper's running example (Fig. 2).
inline db::Catalog MakeProteinCatalog() {
  db::Catalog catalog;
  auto schema = db::RelationSchema::Make(
      "F",
      {{"organism", db::ValueType::kString, false},
       {"protein", db::ValueType::kString, false},
       {"function", db::ValueType::kString, false}},
      {0, 1});
  ORCH_CHECK(schema.ok());
  ORCH_CHECK(catalog.AddRelation(*std::move(schema)).ok());
  return catalog;
}

/// Shorthand tuple of string values.
inline db::Tuple T(std::initializer_list<const char*> values) {
  std::vector<db::Value> out;
  out.reserve(values.size());
  for (const char* v : values) out.emplace_back(v);
  return db::Tuple(std::move(out));
}

inline core::Update Ins(const char* organism, const char* protein,
                        const char* function, core::ParticipantId origin) {
  return core::Update::Insert("F", T({organism, protein, function}), origin);
}

inline core::Update Del(const char* organism, const char* protein,
                        const char* function, core::ParticipantId origin) {
  return core::Update::Delete("F", T({organism, protein, function}), origin);
}

inline core::Update Mod(const char* organism, const char* protein,
                        const char* from_function, const char* to_function,
                        core::ParticipantId origin) {
  return core::Update::Modify("F", T({organism, protein, from_function}),
                              T({organism, protein, to_function}), origin);
}

/// Builds a transaction with explicit id parts and updates.
inline core::Transaction Txn(core::ParticipantId origin, uint64_t seq,
                             std::vector<core::Update> updates,
                             std::vector<core::TransactionId> antecedents = {},
                             core::Epoch epoch = 0) {
  core::Transaction txn;
  txn.id = core::TransactionId{origin, seq};
  txn.updates = std::move(updates);
  txn.antecedents = std::move(antecedents);
  txn.epoch = epoch;
  return txn;
}

/// True if the instance's F table contains exactly `tuples` (any order).
inline bool InstanceHasExactly(const db::Instance& instance,
                               std::vector<db::Tuple> tuples) {
  auto table = instance.GetTable("F");
  ORCH_CHECK(table.ok());
  if ((*table)->size() != tuples.size()) return false;
  for (const db::Tuple& t : tuples) {
    if (!(*table)->ContainsTuple(t)) return false;
  }
  return true;
}

}  // namespace orchestra::testing

#endif  // ORCHESTRA_TESTS_TEST_UTIL_H_
