// Fixture: D2 — an ambient (non-seeded, non-Rng) randomness source.
#include <random>

namespace orchestra::core {

int PickVictim(int n) {
  std::mt19937 gen;
  return static_cast<int>(gen() % static_cast<unsigned>(n));
}

}  // namespace orchestra::core
