// Fixture: D3 — range-for over an unordered container in a decision layer.
#include <unordered_map>
#include <vector>

namespace orchestra::core {

std::vector<int> CollectIds(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> scores;
  std::vector<int> out;
  for (const auto& kv : scores) {
    out.push_back(kv.first);
  }
  return out;
}

}  // namespace orchestra::core
