// Fixture: S1 — a Status-returning call whose result is dropped.

namespace orchestra::core {

class Status {
 public:
  bool ok() const { return true; }
};

Status DoWork();

void Caller() {
  DoWork();
}

}  // namespace orchestra::core
