// Fixture: SUP — a suppression directive with no written reason is itself
// a violation and cannot be suppressed.

namespace orchestra::core {

// ORCH_LINT(allow:D3)
int Answer() { return 42; }

}  // namespace orchestra::core
