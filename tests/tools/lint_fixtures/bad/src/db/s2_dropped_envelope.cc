// Fixture: S2 — an envelope decode whose Result is dropped at statement
// position, the shape that consumes bytes while discarding the checksum
// verdict.

namespace orchestra::db {

template <typename T>
class Result {
 public:
  bool ok() const { return true; }
};

Result<int> UnwrapEnvelope(const char* framed, int policy);

void Caller(const char* framed) {
  UnwrapEnvelope(framed, 0);
}

}  // namespace orchestra::db
