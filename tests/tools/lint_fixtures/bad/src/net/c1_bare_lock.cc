// Fixture: C1 — a bare mutex .lock() call instead of an RAII guard.
#include <mutex>

namespace orchestra::net {

class Channel {
 public:
  void Acquire() { mu_.lock(); }

 private:
  std::mutex mu_;
};

}  // namespace orchestra::net
