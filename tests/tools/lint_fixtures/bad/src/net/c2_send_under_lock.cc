// Fixture: C2 — a network send while a lock guard is live in the scope.
#include <mutex>

namespace orchestra::net {

struct Wire {
  void Deliver(int v);
};

class Channel {
 public:
  void Push(Wire* wire, int v) {
    std::lock_guard<std::mutex> guard(mu_);
    seq_ = v;
    wire->Send(v);
  }

 private:
  std::mutex mu_;
  int seq_ = 0;
};

}  // namespace orchestra::net
