// Fixture: D1 — a wall-clock read outside common/clock.* / common/trace.*.
#include <chrono>

namespace orchestra::sim {

long NowMicros() {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace orchestra::sim
