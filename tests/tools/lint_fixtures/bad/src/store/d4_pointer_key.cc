// Fixture: D4 — a container ordered by raw pointer value.
#include <map>

namespace orchestra::store {

struct Node {
  int id = 0;
};

int CountNodes() {
  std::map<Node*, int> index;
  return static_cast<int>(index.size());
}

}  // namespace orchestra::store
