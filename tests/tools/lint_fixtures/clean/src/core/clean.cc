// Fixture: a file that satisfies every orch_lint rule.
#include <map>
#include <vector>

namespace orchestra::core {

std::vector<int> SortedKeys(const std::map<int, int>& scores) {
  std::vector<int> out;
  for (const auto& kv : scores) {
    out.push_back(kv.first);
  }
  return out;
}

}  // namespace orchestra::core
