// Fixture: a well-formed suppression that matches no violation; the
// linter reports it as unused (informational, not an error).

namespace orchestra::core {

// ORCH_LINT(allow:D1): stale annotation left behind after a refactor
int Answer() { return 42; }

}  // namespace orchestra::core
