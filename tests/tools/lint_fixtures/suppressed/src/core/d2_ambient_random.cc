// Fixture: D2 violation carrying a valid, reasoned suppression.
#include <random>

namespace orchestra::core {

int PickVictim(int n) {
  std::mt19937 gen;  // ORCH_LINT(allow:D2): fixture exercises the trailing-comment suppression path
  return static_cast<int>(gen() % static_cast<unsigned>(n));
}

}  // namespace orchestra::core
