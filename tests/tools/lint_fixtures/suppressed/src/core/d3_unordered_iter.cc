// Fixture: D3 violation carrying a valid, reasoned suppression.
#include <unordered_map>
#include <vector>

namespace orchestra::core {

std::vector<int> CollectIds(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> scores;
  std::vector<int> out;
  // ORCH_LINT(allow:D3): fixture; the collected set is sorted by the caller
  for (const auto& kv : scores) {
    out.push_back(kv.first);
  }
  return out;
}

}  // namespace orchestra::core
