// Fixture: S1 violation carrying a valid, reasoned suppression.

namespace orchestra::core {

class Status {
 public:
  bool ok() const { return true; }
};

Status DoWork();

void Caller() {
  DoWork();  // ORCH_LINT(allow:S1): fixture; failure is observable through the caller's next probe
}

}  // namespace orchestra::core
