// Fixture: S2 violation carrying a valid, reasoned suppression.

namespace orchestra::db {

template <typename T>
class Result {
 public:
  bool ok() const { return true; }
};

Result<int> UnwrapEnvelope(const char* framed, int policy);

void Caller(const char* framed) {
  // ORCH_LINT(allow:S2): fixture; this probe only warms the decode cache
  UnwrapEnvelope(framed, 0);
}

}  // namespace orchestra::db
