// Fixture: C1 violation carrying a valid, reasoned suppression.
#include <mutex>

namespace orchestra::net {

class Channel {
 public:
  void Acquire() { mu_.lock(); }  // ORCH_LINT(allow:C1): fixture; paired with a guard-owned unlock elsewhere

 private:
  std::mutex mu_;
};

}  // namespace orchestra::net
