// Fixture: C2 violation carrying a valid, reasoned suppression.
#include <mutex>

namespace orchestra::net {

struct Wire {
  void Deliver(int v);
};

class Channel {
 public:
  void Push(Wire* wire, int v) {
    std::lock_guard<std::mutex> guard(mu_);
    seq_ = v;
    // ORCH_LINT(allow:C2): fixture; this Send is loopback-only and never re-enters the lock
    wire->Send(v);
  }

 private:
  std::mutex mu_;
  int seq_ = 0;
};

}  // namespace orchestra::net
