// Fixture: D1 violation carrying a valid, reasoned suppression.
#include <chrono>

namespace orchestra::sim {

long NowMicros() {
  // ORCH_LINT(allow:D1): fixture exercises the suppression path; not simulated code
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace orchestra::sim
