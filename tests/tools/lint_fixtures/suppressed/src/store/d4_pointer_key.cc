// Fixture: D4 violation carrying a valid, reasoned suppression.
#include <map>

namespace orchestra::store {

struct Node {
  int id = 0;
};

int CountNodes() {
  // ORCH_LINT(allow:D4): fixture; the map is used for membership only, never iterated
  std::map<Node*, int> index;
  return static_cast<int>(index.size());
}

}  // namespace orchestra::store
