// Self-test for the orch_lint rule engine: every rule's seeded fixture
// must fire exactly once, every valid suppression must silence its
// violation (with the reason carried through), malformed suppressions
// must be errors, and a clean file must lint clean. This is what makes
// the lint ctest trustworthy — if a rule regresses to never firing, this
// test fails even though the tree itself stays green.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "orch_lint_lib.h"

#ifndef ORCH_LINT_FIXTURE_DIR
#error "ORCH_LINT_FIXTURE_DIR must point at tests/tools/lint_fixtures"
#endif

namespace orchestra::lint {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Loads `<kind>/<rel_path>` from the fixture corpus and lints it under
// its repo-relative name, so layer detection (core/, store/, sim/)
// behaves exactly as it does on the real tree.
RunResult LintFixture(const std::string& kind, const std::string& rel_path) {
  const std::string full =
      std::string(ORCH_LINT_FIXTURE_DIR) + "/" + kind + "/" + rel_path;
  std::vector<FileInput> files;
  files.push_back(FileInput{rel_path, ReadFile(full)});
  return Run(files);
}

struct RuleFixture {
  const char* rule;
  const char* rel_path;
};

const RuleFixture kRuleFixtures[] = {
    {"D1", "src/sim/d1_wall_clock.cc"},
    {"D2", "src/core/d2_ambient_random.cc"},
    {"D3", "src/core/d3_unordered_iter.cc"},
    {"D4", "src/store/d4_pointer_key.cc"},
    {"C1", "src/net/c1_bare_lock.cc"},
    {"C2", "src/net/c2_send_under_lock.cc"},
    {"S1", "src/core/s1_discarded_status.cc"},
    {"S2", "src/db/s2_dropped_envelope.cc"},
};

TEST(LintSelfTest, EachBadFixtureFiresItsRuleExactlyOnce) {
  for (const RuleFixture& fx : kRuleFixtures) {
    SCOPED_TRACE(fx.rel_path);
    RunResult result = LintFixture("bad", fx.rel_path);
    EXPECT_FALSE(result.clean());
    EXPECT_EQ(result.unsuppressed, 1);
    EXPECT_EQ(result.suppressed, 0);
    ASSERT_EQ(result.violations.size(), 1u);
    EXPECT_EQ(result.violations[0].rule, fx.rule);
    EXPECT_EQ(result.violations[0].file, fx.rel_path);
    EXPECT_GT(result.violations[0].line, 0);
    EXPECT_FALSE(result.violations[0].suppressed);
  }
}

TEST(LintSelfTest, EachSuppressedFixtureIsCleanAndCarriesItsReason) {
  for (const RuleFixture& fx : kRuleFixtures) {
    SCOPED_TRACE(fx.rel_path);
    RunResult result = LintFixture("suppressed", fx.rel_path);
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.unsuppressed, 0);
    EXPECT_EQ(result.suppressed, 1);
    ASSERT_EQ(result.violations.size(), 1u);
    EXPECT_EQ(result.violations[0].rule, fx.rule);
    EXPECT_TRUE(result.violations[0].suppressed);
    EXPECT_FALSE(result.violations[0].reason.empty())
        << "a suppression must carry a written reason";
    // No suppression may dangle: the directive matched its violation.
    EXPECT_EQ(result.unused_suppressions, 0);
  }
}

TEST(LintSelfTest, MalformedSuppressionIsAnUnsuppressableError) {
  RunResult result = LintFixture("bad", "src/core/sup_malformed.cc");
  EXPECT_FALSE(result.clean());
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].rule, "SUP");
  EXPECT_FALSE(result.violations[0].suppressed);
}

TEST(LintSelfTest, CleanFixtureLintsClean) {
  RunResult result = LintFixture("clean", "src/core/clean.cc");
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.unused_suppressions, 0);
}

TEST(LintSelfTest, UnusedSuppressionIsReportedButNotAnError) {
  RunResult result = LintFixture("clean", "src/core/unused_suppression.cc");
  EXPECT_TRUE(result.clean()) << "unused suppressions are informational";
  EXPECT_EQ(result.unused_suppressions, 1);
  ASSERT_EQ(result.unused_suppression_notes.size(), 1u);
  EXPECT_NE(result.unused_suppression_notes[0].find("allow:D1"),
            std::string::npos);
}

TEST(LintSelfTest, ReportNamesRuleAndCountsSuppressions) {
  RunResult result = LintFixture("bad", "src/core/d3_unordered_iter.cc");
  const std::string report = FormatReport(result, /*verbose=*/false);
  EXPECT_NE(report.find("[D3]"), std::string::npos);
  EXPECT_NE(report.find("1 violation(s)"), std::string::npos);
}

// The S1 heuristic is visibility-scoped: a Status-returning Put in one
// translation unit must not convict an unrelated void Put in a file that
// never includes it.
TEST(LintSelfTest, StatusFactsDoNotLeakAcrossUnrelatedFiles) {
  std::vector<FileInput> files;
  files.push_back(FileInput{
      "src/storage/engine.h",
      "class Status {};\nStatus Put(int v);\n"});
  files.push_back(FileInput{
      "src/core/other.cc",
      "struct Map { void Put(int); };\n"
      "void F(Map& m) { m.Put(1); }\n"});
  RunResult result = ::orchestra::lint::Run(files);
  for (const Violation& v : result.violations) {
    EXPECT_NE(v.rule, "S1") << v.file << ":" << v.line << " " << v.message;
  }
}

}  // namespace
}  // namespace orchestra::lint
