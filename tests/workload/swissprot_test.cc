#include "workload/swissprot.h"

#include <gtest/gtest.h>

#include <set>

#include "core/apply.h"
#include "core/flatten.h"

namespace orchestra::workload {
namespace {

TEST(SwissProtCatalogTest, SchemaMatchesPaper) {
  auto catalog = MakeSwissProtCatalog();
  ASSERT_TRUE(catalog.ok());
  auto function = catalog->GetRelation(kFunctionRelation);
  ASSERT_TRUE(function.ok());
  EXPECT_EQ((*function)->arity(), 3u);
  EXPECT_EQ((*function)->key_columns(), (std::vector<size_t>{0, 1}));
  auto crossref = catalog->GetRelation(kCrossRefRelation);
  ASSERT_TRUE(crossref.ok());
  EXPECT_EQ((*crossref)->arity(), 4u);
  ASSERT_EQ(catalog->foreign_keys().size(), 1u);
  EXPECT_EQ(catalog->foreign_keys()[0].child_relation, kCrossRefRelation);
  EXPECT_EQ(catalog->foreign_keys()[0].parent_relation, kFunctionRelation);
}

TEST(VocabularyTest, NonEmptyAndDistinct) {
  EXPECT_GE(OrganismVocabulary().size(), 20u);
  EXPECT_GE(FunctionVocabulary().size(), 300u);
  EXPECT_GE(CrossRefDatabases().size(), 10u);
}

class SwissProtWorkloadTest : public ::testing::Test {
 protected:
  SwissProtWorkloadTest() {
    auto catalog = MakeSwissProtCatalog();
    ORCH_CHECK(catalog.ok());
    catalog_ = *std::move(catalog);
  }

  WorkloadConfig Config() {
    WorkloadConfig config;
    config.seed = 7;
    return config;
  }

  db::Catalog catalog_;
};

TEST_F(SwissProtWorkloadTest, TransactionsAreLocallyApplicable) {
  SwissProtWorkload workload(Config());
  db::Instance instance(&catalog_);
  for (int i = 0; i < 200; ++i) {
    auto updates = workload.NextTransaction(1, instance);
    if (updates.empty()) continue;
    auto flat = core::Flatten(catalog_, updates);
    ASSERT_TRUE(flat.ok()) << flat.status().ToString();
    ASSERT_TRUE(core::ApplyFlattened(&instance, *flat).ok());
  }
  EXPECT_GT(instance.TotalTuples(), 0u);
  EXPECT_TRUE(instance.CheckForeignKeys().ok());
}

TEST_F(SwissProtWorkloadTest, TransactionSizeControlsFunctionUpdates) {
  WorkloadConfig config = Config();
  config.transaction_size = 5;
  config.replace_fraction = 0;  // inserts only, deterministic counting
  SwissProtWorkload workload(config);
  db::Instance instance(&catalog_);
  auto updates = workload.NextTransaction(1, instance);
  size_t function_updates = 0;
  for (const auto& u : updates) {
    if (u.relation() == kFunctionRelation) ++function_updates;
  }
  EXPECT_LE(function_updates, 5u);
  EXPECT_GE(function_updates, 1u);
}

TEST_F(SwissProtWorkloadTest, InsertsCarryCrossReferences) {
  WorkloadConfig config = Config();
  config.replace_fraction = 0;
  SwissProtWorkload workload(config);
  db::Instance instance(&catalog_);
  size_t functions = 0;
  size_t crossrefs = 0;
  for (int i = 0; i < 300; ++i) {
    for (const auto& u : workload.NextTransaction(1, instance)) {
      if (u.relation() == kFunctionRelation) {
        ++functions;
      } else {
        ++crossrefs;
      }
    }
    // Apply so replaces/duplicates behave.
    auto updates = workload.NextTransaction(1, instance);
    (void)updates;
  }
  ASSERT_GT(functions, 0u);
  // ~7.3 cross-refs per primary insert (paper §6); allow generous slack.
  const double ratio = static_cast<double>(crossrefs) / functions;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 10.0);
}

TEST_F(SwissProtWorkloadTest, ReplacementsTargetExistingTuples) {
  WorkloadConfig config = Config();
  config.replace_fraction = 1.0;  // always replace when possible
  SwissProtWorkload workload(config);
  db::Instance instance(&catalog_);
  // Seed one tuple so replacements have a target.
  auto table = instance.GetTable(kFunctionRelation);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)
                  ->Insert(db::Tuple{db::Value("Homo sapiens"),
                                     db::Value("P00001"),
                                     db::Value("glycolysis")})
                  .ok());
  auto updates = workload.NextTransaction(1, instance);
  ASSERT_FALSE(updates.empty());
  EXPECT_TRUE(updates[0].is_modify());
  EXPECT_TRUE((*table)->ContainsTuple(updates[0].old_tuple()));
}

TEST_F(SwissProtWorkloadTest, DeterministicForSameSeed) {
  SwissProtWorkload a(Config());
  SwissProtWorkload b(Config());
  db::Instance instance(&catalog_);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextTransaction(1, instance), b.NextTransaction(1, instance));
  }
}

TEST_F(SwissProtWorkloadTest, KeyAtIsStable) {
  SwissProtWorkload workload(Config());
  EXPECT_EQ(workload.KeyAt(5), workload.KeyAt(5));
  EXPECT_NE(workload.KeyAt(5), workload.KeyAt(6));
  EXPECT_EQ(workload.KeyAt(3).size(), 2u);
}

TEST_F(SwissProtWorkloadTest, HotKeysCollideAcrossPeers) {
  // Two peers generating independently against empty instances should
  // write overlapping keys thanks to the Zipf key pool — the property
  // that produces conflicts in the paper's experiments.
  WorkloadConfig config = Config();
  config.replace_fraction = 0;
  config.key_pool = 200;
  config.key_zipf_s = 1.0;
  SwissProtWorkload workload(config);
  db::Instance instance(&catalog_);
  std::set<db::Tuple> keys1, keys2;
  auto function = catalog_.GetRelation(kFunctionRelation);
  ASSERT_TRUE(function.ok());
  for (int i = 0; i < 100; ++i) {
    for (const auto& u : workload.NextTransaction(1, instance)) {
      if (u.relation() == kFunctionRelation && u.is_insert()) {
        keys1.insert((*function)->KeyOf(u.new_tuple()));
      }
    }
    for (const auto& u : workload.NextTransaction(2, instance)) {
      if (u.relation() == kFunctionRelation && u.is_insert()) {
        keys2.insert((*function)->KeyOf(u.new_tuple()));
      }
    }
  }
  size_t shared = 0;
  for (const auto& k : keys1) {
    if (keys2.count(k) != 0) ++shared;
  }
  EXPECT_GT(shared, 5u);
}

}  // namespace
}  // namespace orchestra::workload
