#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace orchestra::workload {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.5);
  double total = 0;
  for (size_t k = 0; k < zipf.n(); ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfDistribution zipf(50, 1.5);
  for (size_t k = 1; k < zipf.n(); ++k) {
    EXPECT_GT(zipf.Pmf(k - 1), zipf.Pmf(k));
  }
}

TEST(ZipfTest, PmfMatchesPowerLaw) {
  ZipfDistribution zipf(1000, 1.5);
  // P(0)/P(k) should equal (k+1)^1.5.
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(9), std::pow(10.0, 1.5), 1e-6);
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(99), std::pow(100.0, 1.5), 1e-6);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfDistribution zipf(10, 1.5);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 10u);
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(20, 1.5);
  Rng rng(2);
  const int n = 100000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  for (size_t k = 0; k < 5; ++k) {
    const double observed = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(observed, zipf.Pmf(k), 0.01) << "rank " << k;
  }
}

TEST(ZipfTest, HeavyTailConcentratesOnHotKeys) {
  // With s = 1.5 the top handful of ranks dominate — the property the
  // workload relies on to generate cross-peer conflicts.
  ZipfDistribution zipf(2000, 1.5);
  double top10 = 0;
  for (size_t k = 0; k < 10; ++k) top10 += zipf.Pmf(k);
  EXPECT_GT(top10, 0.6);
}

TEST(ZipfTest, UniformWhenSIsZero) {
  ZipfDistribution zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
  }
}

TEST(ZipfTest, DeterministicGivenSeed) {
  ZipfDistribution zipf(100, 1.5);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(a), zipf.Sample(b));
  }
}

}  // namespace
}  // namespace orchestra::workload
