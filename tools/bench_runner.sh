#!/usr/bin/env bash
# Bench runner: build the optimized preset, run the micro_reconcile
# study plus every ORCH_* sweep (fault, churn, delta, corruption), and
# diff the stable fields of the freshly emitted BENCH_*.json against the
# committed baselines at the repo root.
#
# Wall-clock timings (and the host-dependent thread fields derived from
# them) vary run to run, so they are stripped before the diff. Every
# remaining field — decision counts, simulated message/byte totals,
# verdict flags — is deterministic and must match the committed
# baselines exactly.
#
# Usage: tools/bench_runner.sh
#   ORCH_BENCH_OUT=dir   where fresh JSON lands (default build/bench_out)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
out="${ORCH_BENCH_OUT:-$build/bench_out}"
mkdir -p "$out"

(cd "$repo" && cmake --preset default >/dev/null)
cmake --build "$build" -j"$(nproc)" --target micro_reconcile provenance_dump

bench="$build/bench/micro_reconcile"
prov_dump="$build/tools/provenance_dump"

echo "== reconcile study =="
ORCH_BENCH_JSON="$out/BENCH_micro_reconcile.json" \
    "$bench" --benchmark_filter=NONE
echo "== fault sweep =="
ORCH_FAULT_SWEEP=1 ORCH_FAULT_SWEEP_JSON="$out/BENCH_fault_sweep.json" \
    "$bench"
echo "== churn sweep =="
ORCH_CHURN_SWEEP=1 ORCH_CHURN_SWEEP_JSON="$out/BENCH_churn_sweep.json" \
    "$bench"
echo "== delta sweep =="
ORCH_DELTA_SWEEP=1 ORCH_DELTA_SWEEP_JSON="$out/BENCH_delta_sweep.json" \
    "$bench"
echo "== corruption sweep =="
ORCH_CORRUPTION_SWEEP=1 \
    ORCH_CORRUPTION_SWEEP_JSON="$out/BENCH_corruption_sweep.json" \
    "$bench"
# The sweep's own verdict gates the run before any baseline diff: every
# corrupted run must match its fault-free baseline with zero undetected
# reads, and the verify-off control arm must demonstrably consume rot.
if ! jq -e '.all_checks_pass and .corruption_exercised and .control_consumed_rot' \
    "$out/BENCH_corruption_sweep.json" >/dev/null; then
  echo "corruption sweep verdict FAILED:" >&2
  jq '{all_checks_pass, corruption_exercised, control_consumed_rot}' \
      "$out/BENCH_corruption_sweep.json" >&2
  exit 1
fi

# One traced sweep: rerun the fault sweep with ORCH_TRACE set, writing
# its JSON to a scratch path (the traced rerun is exercised, not
# diffed) and fail hard if the trace file is missing, empty, or not
# the Chrome trace_event shape. Tracing must not perturb decisions, so
# reusing the fault sweep doubles as a cheap end-to-end check.
echo "== traced fault sweep =="
trace="$out/trace_fault_sweep.json"
rm -f "$trace"
ORCH_TRACE="$trace" ORCH_FAULT_SWEEP=1 \
    ORCH_FAULT_SWEEP_JSON="$out/BENCH_fault_sweep_traced.json" \
    "$bench"
if ! jq -e '.traceEvents | length > 0' "$trace" >/dev/null; then
  echo "trace output $trace is missing, empty, or invalid JSON" >&2
  exit 1
fi
echo "trace OK: $(jq '.traceEvents | length' "$trace") events in $trace"

# Provenance + simulated-time trace determinism: run the seeded
# provenance_dump confederation twice with ORCH_SIM_TRACE armed. Both
# the provenance JSONL and the sim trace must be byte-identical across
# the runs, the trace must be well-formed Chrome trace_event JSON, and
# a verdict/cause summary of the provenance stream must match the
# committed baseline at the repo root.
echo "== provenance determinism =="
ORCH_SIM_TRACE="$out/sim_trace_a.json" \
    "$prov_dump" central "$out/provenance_a.jsonl"
ORCH_SIM_TRACE="$out/sim_trace_b.json" \
    "$prov_dump" central "$out/provenance_b.jsonl"
cmp "$out/provenance_a.jsonl" "$out/provenance_b.jsonl" \
  || { echo "provenance JSONL diverged between same-seed runs" >&2; exit 1; }
cmp "$out/sim_trace_a.json" "$out/sim_trace_b.json" \
  || { echo "sim trace diverged between same-seed runs" >&2; exit 1; }
if ! jq -e '.traceEvents | length > 0' "$out/sim_trace_a.json" >/dev/null; then
  echo "sim trace is missing, empty, or invalid JSON" >&2
  exit 1
fi
echo "sim trace OK: $(jq '.traceEvents | length' "$out/sim_trace_a.json")" \
     "events, byte-identical across runs"
jq -s '{bench: "provenance_summary",
        records: length,
        by_verdict: (group_by(.verdict)
                     | map({key: .[0].verdict, value: length})
                     | from_entries),
        by_cause: (group_by(.cause)
                   | map({key: .[0].cause, value: length})
                   | from_entries)}' \
    "$out/provenance_a.jsonl" > "$out/BENCH_provenance_summary.json"

# Keys dropped before diffing: wall-time measurements (*_us and
# *_micros counters, the mean/p50/p95 study stats), speedups derived
# from them, and the host-shape fields (hardware_threads,
# oversubscribed, speedup_note).
stable='walk(if type == "object"
             then with_entries(select(.key
                  | test("_us$|_micros$|speedup|overhead|hardware_threads|oversubscribed|note")
                  | not))
             else . end)'

fail=0
for name in micro_reconcile fault_sweep churn_sweep delta_sweep \
             corruption_sweep provenance_summary; do
  base="$repo/BENCH_$name.json"
  fresh="$out/BENCH_$name.json"
  if [[ ! -f "$base" ]]; then
    echo "BENCH_$name.json: no committed baseline at repo root" >&2
    fail=1
    continue
  fi
  if diff -u <(jq -S "$stable" "$base") <(jq -S "$stable" "$fresh"); then
    echo "BENCH_$name.json: stable fields match the committed baseline"
  else
    echo "BENCH_$name.json: stable fields DIVERGE from the baseline" >&2
    fail=1
  fi
done
exit "$fail"
