// metrics_dump: runs a small confederation against both update stores
// with tracing enabled, then renders the process-wide metrics registry
// (common/metrics.h) as a table — the quickest way to see what the
// observability layer records and where the trace file lands.
//
// Usage: metrics_dump [trace_path]
//   trace_path defaults to "metrics_dump_trace.json" in the working
//   directory (or the ORCH_TRACE env var when set). Load the file at
//   chrome://tracing or https://ui.perfetto.dev.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "sim/cdss.h"

using namespace orchestra;

namespace {

const char* KindName(MetricsRegistry::Sample::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Sample::Kind::kCounter:
      return "counter";
    case MetricsRegistry::Sample::Kind::kGauge:
      return "gauge";
    case MetricsRegistry::Sample::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

int RunConfederation(sim::StoreKind kind) {
  sim::CdssConfig cfg;
  cfg.participants = 8;
  cfg.store = kind;
  cfg.rounds = 3;
  cfg.txns_between_recons = 2;
  auto cdss = sim::Cdss::Make(cfg);
  if (!cdss.ok()) {
    std::fprintf(stderr, "Cdss::Make failed: %s\n",
                 cdss.status().ToString().c_str());
    return 1;
  }
  auto result = (*cdss)->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "Cdss::Run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%s store: %zu reconciliations, %zu accepted, %zu deferred, "
      "state ratio %.3f\n",
      kind == sim::StoreKind::kCentral ? "central" : "dht",
      result->reconciliations, result->accepted, result->deferred,
      result->state_ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "metrics_dump_trace.json";
  if (const char* env = std::getenv("ORCH_TRACE");
      env != nullptr && env[0] != '\0') {
    trace_path = env;
  }
  if (argc > 1) trace_path = argv[1];
  Tracer::Global().Enable(trace_path);

  if (RunConfederation(sim::StoreKind::kCentral) != 0) return 1;
  if (RunConfederation(sim::StoreKind::kDht) != 0) return 1;

  std::printf("\n%-40s %-9s %14s %10s %8s %8s %8s\n", "metric", "kind",
              "value", "count", "p50", "p95", "p99");
  std::printf("%-40s %-9s %14s %10s %8s %8s %8s\n", "------", "----", "-----",
              "-----", "---", "---", "---");
  for (const MetricsRegistry::Sample& s :
       MetricsRegistry::Global().TakeSnapshot()) {
    if (s.kind == MetricsRegistry::Sample::Kind::kHistogram) {
      // value column shows the sum; count makes the mean recoverable.
      // Quantiles are bucket-interpolated estimates (EstimateQuantile):
      // exact at bucket edges, within a factor of 4 inside a bucket.
      std::printf(
          "%-40s %-9s %14lld %10lld %8lld %8lld %8lld\n", s.name.c_str(),
          KindName(s.kind), static_cast<long long>(s.histogram.sum),
          static_cast<long long>(s.histogram.count),
          static_cast<long long>(EstimateQuantile(s.histogram, 0.50)),
          static_cast<long long>(EstimateQuantile(s.histogram, 0.95)),
          static_cast<long long>(EstimateQuantile(s.histogram, 0.99)));
    } else {
      std::printf("%-40s %-9s %14lld %10s\n", s.name.c_str(), KindName(s.kind),
                  static_cast<long long>(s.value), "");
    }
  }

  const Status flushed = Tracer::Global().Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "trace flush failed: %s\n",
                 flushed.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu trace events written to %s "
              "(open at chrome://tracing or ui.perfetto.dev)\n",
              Tracer::Global().event_count(), trace_path.c_str());
  return 0;
}
