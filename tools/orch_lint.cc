// orch_lint CLI: lints src/, tools/, and bench/ under --root against the
// project determinism & concurrency rulebook (see orch_lint_lib.h).
//
//   orch_lint --root <repo> [--compile-commands build/compile_commands.json]
//             [--verbose] [files...]
//
// With explicit file arguments only those files are linted (paths are
// taken relative to --root, which decides layer-based rule scoping).
// Exit status: 0 when no unsuppressed violation was found, 1 otherwise,
// 2 on usage/IO errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "orch_lint_lib.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string compile_commands;
  bool verbose = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands = argv[++i];
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: orch_lint [--root DIR] [--compile-commands FILE]"
                   " [--verbose] [files...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "orch_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "orch_lint: cannot resolve root: " << ec.message() << "\n";
    return 2;
  }

  // Collect the file set: explicit arguments, or compile_commands.json
  // TUs plus a walk of src/, tools/, bench/ (headers are not TUs but
  // carry the declarations the rules need).
  std::set<std::string> rel_paths;
  auto add_path = [&](fs::path p) {
    if (p.is_relative()) p = root / p;
    p = fs::weakly_canonical(p, ec);
    if (ec) return;
    const std::string rel = fs::relative(p, root, ec).generic_string();
    if (ec || rel.rfind("..", 0) == 0) return;  // outside root
    if (rel.rfind("src/", 0) != 0 && rel.rfind("tools/", 0) != 0 &&
        rel.rfind("bench/", 0) != 0 && explicit_files.empty()) {
      return;
    }
    if (HasLintableExtension(p) && fs::is_regular_file(p, ec)) {
      rel_paths.insert(rel);
    }
  };

  if (!explicit_files.empty()) {
    for (const std::string& f : explicit_files) add_path(f);
  } else {
    if (!compile_commands.empty()) {
      std::vector<std::string> tus;
      if (!orchestra::lint::ReadCompileCommands(compile_commands, &tus)) {
        std::cerr << "orch_lint: note: cannot read " << compile_commands
                  << "; falling back to a directory walk\n";
      }
      for (const std::string& f : tus) add_path(f);
    }
    for (const char* dir : {"src", "tools", "bench"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base, ec)) continue;
      for (fs::recursive_directory_iterator it(base, ec), end;
           !ec && it != end; it.increment(ec)) {
        add_path(it->path());
      }
    }
  }

  if (rel_paths.empty()) {
    std::cerr << "orch_lint: no lintable files found under " << root << "\n";
    return 2;
  }

  std::vector<orchestra::lint::FileInput> inputs;
  inputs.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    orchestra::lint::FileInput in;
    in.rel_path = rel;
    if (!ReadFile(root / rel, &in.content)) {
      std::cerr << "orch_lint: cannot read " << rel << "\n";
      return 2;
    }
    inputs.push_back(std::move(in));
  }

  const orchestra::lint::RunResult result = orchestra::lint::Run(inputs);
  std::cout << orchestra::lint::FormatReport(result, verbose);
  return result.clean() ? 0 : 1;
}
