#include "orch_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <sstream>

namespace orchestra::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;
  bool ident = false;
};

struct Comment {
  std::string text;
  int line = 0;       // line the comment starts on
  bool trailing = false;  // code tokens precede it on the same line
};

struct TokenizedFile {
  std::vector<Tok> toks;
  std::vector<Comment> comments;
  std::vector<std::string> includes;  // #include "..." paths, verbatim
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Splits source into identifier/punctuation tokens, recording comments
// (for suppression directives) and #include "..." directives. String and
// character literals are consumed whole and dropped; preprocessor lines
// other than includes are skipped entirely.
TokenizedFile Tokenize(const std::string& src) {
  TokenizedFile out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;
  int last_code_line = 0;  // last line that produced a token
  bool at_line_start = true;

  auto advance_newline = [&]() { ++line; at_line_start = true; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      advance_newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the (possibly continued) line.
    if (c == '#' && at_line_start) {
      size_t j = i;
      std::string directive;
      while (j < n && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
          ++line;
          j += 2;
          continue;
        }
        directive.push_back(src[j]);
        ++j;
      }
      // #include "path" (quoted includes resolve within the project).
      size_t inc = directive.find("include");
      if (inc != std::string::npos) {
        size_t q1 = directive.find('"', inc);
        if (q1 != std::string::npos) {
          size_t q2 = directive.find('"', q1 + 1);
          if (q2 != std::string::npos) {
            out.includes.push_back(directive.substr(q1 + 1, q2 - q1 - 1));
          }
        }
      }
      i = j;
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      Comment cm;
      cm.text = src.substr(i + 2, j - i - 2);
      cm.line = line;
      cm.trailing = (last_code_line == line);
      out.comments.push_back(cm);
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, j);
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, end + closer.size());
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; stay robust
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      last_code_line = line;
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      out.toks.push_back(Tok{src.substr(i, j - i), line, true});
      last_code_line = line;
      i = j;
      continue;
    }
    // Number (consume so '.' inside floats is not a member access).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      out.toks.push_back(Tok{src.substr(i, j - i), line, false});
      last_code_line = line;
      i = j;
      continue;
    }
    // Multi-char punctuation we care about: :: and ->
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.toks.push_back(Tok{"::", line, false});
      last_code_line = line;
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.toks.push_back(Tok{"->", line, false});
      last_code_line = line;
      i += 2;
      continue;
    }
    out.toks.push_back(Tok{std::string(1, c), line, false});
    last_code_line = line;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {"D1", "D2", "D3", "D4",
                                               "C1", "C2", "S1", "S2"};
  return kRules;
}

struct Suppression {
  std::string rule;
  std::string reason;
  int target_line = 0;
  int comment_line = 0;
  bool used = false;
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Parses suppression directives out of the file's comments. A directive
// must be the comment's first word (prose that merely mentions the
// syntax is ignored). Standalone comments target the next code line;
// trailing comments target their own line. Malformed directives
// (unknown rule or missing reason) become unsuppressable SUP violations.
std::vector<Suppression> CollectSuppressions(const TokenizedFile& tf,
                                             const std::string& file,
                                             std::vector<Violation>* out) {
  std::vector<Suppression> sups;
  for (const Comment& cm : tf.comments) {
    const std::string directive = Trim(cm.text);
    if (directive.rfind("ORCH_LINT(", 0) != 0) continue;
    auto malformed = [&](const std::string& why) {
      Violation v;
      v.file = file;
      v.line = cm.line;
      v.rule = "SUP";
      v.message = "malformed ORCH_LINT suppression (" + why +
                  "); expected // ORCH_LINT(allow:RULE): <reason>";
      out->push_back(v);
    };
    const std::string prefix = "ORCH_LINT(allow:";
    if (directive.compare(0, prefix.size(), prefix) != 0) {
      malformed("missing allow:");
      continue;
    }
    size_t close = directive.find(')', prefix.size());
    if (close == std::string::npos) {
      malformed("unterminated directive");
      continue;
    }
    Suppression s;
    s.rule = directive.substr(prefix.size(), close - prefix.size());
    if (KnownRules().count(s.rule) == 0) {
      malformed("unknown rule '" + s.rule + "'");
      continue;
    }
    std::string rest = directive.substr(close + 1);
    if (!rest.empty() && rest[0] == ':') rest = rest.substr(1);
    s.reason = Trim(rest);
    if (s.reason.empty()) {
      malformed("suppression for " + s.rule + " carries no written reason");
      continue;
    }
    s.comment_line = cm.line;
    if (cm.trailing) {
      s.target_line = cm.line;
    } else {
      // First code line after the comment.
      s.target_line = 0;
      for (const Tok& t : tf.toks) {
        if (t.line > cm.line) {
          s.target_line = t.line;
          break;
        }
      }
    }
    sups.push_back(s);
  }
  return sups;
}

// ---------------------------------------------------------------------------
// Per-file declaration facts (pass 1)
// ---------------------------------------------------------------------------

struct FileFacts {
  std::vector<std::string> includes;
  std::set<std::string> unordered_names;    // vars/members of unordered type
  std::set<std::string> unordered_aliases;  // using X = std::unordered_...
  std::set<std::string> status_functions;   // return Status or Result<T>
  // (type, name) declarations whose type might be an unordered alias.
  std::vector<std::pair<std::string, std::string>> alias_decls;
};

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "else",    "for",    "while",   "do",      "switch",
      "case",     "default", "return", "break",   "continue", "goto",
      "new",      "delete",  "sizeof", "typedef", "using",    "namespace",
      "class",    "struct",  "enum",   "union",   "template", "typename",
      "const",    "static",  "inline", "virtual", "override", "final",
      "public",   "private", "protected", "friend", "operator", "auto",
      "void",     "bool",    "char",   "int",     "long",     "short",
      "unsigned", "signed",  "float",  "double",  "this",     "nullptr",
      "true",     "false",   "co_return", "co_await", "co_yield", "throw",
      "try",      "catch",   "constexpr", "consteval", "constinit",
      "explicit", "mutable", "noexcept", "static_cast", "dynamic_cast",
      "reinterpret_cast", "const_cast", "decltype", "extern", "register",
  };
  return kKeywords.count(s) != 0;
}

// Starting at toks[i] == "<", returns the index one past the matching
// ">" (each ">" is a single token), or toks.size() on imbalance.
size_t SkipTemplateArgs(const std::vector<Tok>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "<") ++depth;
    else if (toks[i].text == ">") {
      --depth;
      if (depth == 0) return i + 1;
    } else if (toks[i].text == ";") {
      return toks.size();  // statement ended inside "<": not a template
    }
  }
  return toks.size();
}

// After a container type (index just past ">"), extracts the declared
// variable name, skipping cv/ref/pointer decoration. Returns empty when
// the construct is not a variable declaration (e.g. a function returning
// the container, or a nested template argument).
std::string DeclaredName(const std::vector<Tok>& toks, size_t i) {
  while (i < toks.size() &&
         (toks[i].text == "&" || toks[i].text == "*" ||
          toks[i].text == "const")) {
    ++i;
  }
  if (i >= toks.size() || !toks[i].ident || IsKeyword(toks[i].text)) return "";
  const std::string name = toks[i].text;
  if (i + 1 >= toks.size()) return name;
  const std::string& next = toks[i + 1].text;
  if (next == ";" || next == "=" || next == "{" || next == "," ||
      next == ")") {
    return name;
  }
  return "";  // likely a function declaration/definition
}

void CollectFacts(const TokenizedFile& tf, FileFacts* facts) {
  facts->includes = tf.includes;
  const std::vector<Tok>& t = tf.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    // using Alias = ... unordered_map/unordered_set ... ;
    if (s == "using" && i + 2 < t.size() && t[i + 1].ident &&
        t[i + 2].text == "=") {
      const std::string alias = t[i + 1].text;
      for (size_t j = i + 3; j < t.size() && t[j].text != ";"; ++j) {
        if (t[j].text == "unordered_map" || t[j].text == "unordered_set") {
          facts->unordered_aliases.insert(alias);
          break;
        }
      }
      continue;
    }
    // std::unordered_map<...> name / std::unordered_set<...> name
    if ((s == "unordered_map" || s == "unordered_set") && i + 1 < t.size() &&
        t[i + 1].text == "<") {
      const size_t after = SkipTemplateArgs(t, i + 1);
      const std::string name = DeclaredName(t, after);
      if (!name.empty()) facts->unordered_names.insert(name);
      continue;
    }
    // Status Foo(...) / Status Foo::Bar(...) -> status-returning function.
    if (s == "Status" && t[i].ident) {
      size_t j = i + 1;
      if (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
      std::string last;
      while (j < t.size() && t[j].ident && !IsKeyword(t[j].text)) {
        last = t[j].text;
        if (j + 1 < t.size() && t[j + 1].text == "::") {
          j += 2;
        } else {
          ++j;
          break;
        }
      }
      if (!last.empty() && j < t.size() && t[j].text == "(") {
        facts->status_functions.insert(last);
      }
      continue;
    }
    // Result<T> Foo(...) similarly.
    if (s == "Result" && t[i].ident && i + 1 < t.size() &&
        t[i + 1].text == "<") {
      size_t j = SkipTemplateArgs(t, i + 1);
      if (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
      std::string last;
      while (j < t.size() && t[j].ident && !IsKeyword(t[j].text)) {
        last = t[j].text;
        if (j + 1 < t.size() && t[j + 1].text == "::") {
          j += 2;
        } else {
          ++j;
          break;
        }
      }
      if (!last.empty() && j < t.size() && t[j].text == "(") {
        facts->status_functions.insert(last);
      }
      continue;
    }
    // TypeName varname ; / = / { -- candidate alias-typed declaration,
    // resolved against visible unordered aliases in pass 2. An optional
    // single namespace qualifier (core::TxnIdSet x) is folded away.
    if (t[i].ident && !IsKeyword(s) && i + 1 < t.size()) {
      size_t ti = i;
      if (i + 2 < t.size() && t[i + 1].text == "::" && t[i + 2].ident) {
        ti = i + 2;
      }
      if (ti + 1 < t.size() && t[ti].ident && !IsKeyword(t[ti].text) &&
          t[ti + 1].ident && !IsKeyword(t[ti + 1].text) &&
          ti + 2 < t.size()) {
        const std::string& after = t[ti + 2].text;
        if (after == ";" || after == "=" || after == "{") {
          facts->alias_decls.emplace_back(t[ti].text, t[ti + 1].text);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Path helpers
// ---------------------------------------------------------------------------

std::string Normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool HasComponent(const std::string& path, const std::string& comp) {
  const std::string p = "/" + Normalize(path);
  return p.find("/" + comp + "/") != std::string::npos;
}

std::string Basename(const std::string& path) {
  const std::string p = Normalize(path);
  size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

// D1 exempt: the blessed clock wrappers.
bool IsClockModule(const std::string& path) {
  const std::string base = Basename(path);
  return HasComponent(path, "common") &&
         (base.rfind("clock.", 0) == 0 || base.rfind("trace.", 0) == 0);
}

// D2 exempt: the seeded PRNG implementation.
bool IsRandomModule(const std::string& path) {
  return HasComponent(path, "common") &&
         Basename(path).rfind("random.", 0) == 0;
}

// D3 scope: layers whose iteration order can reach reconciliation
// decisions or published artifacts.
bool IsDecisionLayer(const std::string& path) {
  return HasComponent(path, "core") || HasComponent(path, "store") ||
         HasComponent(path, "sim");
}

// ---------------------------------------------------------------------------
// Rule engine (pass 2)
// ---------------------------------------------------------------------------

struct VisibleFacts {
  std::set<std::string> unordered_names;
  std::set<std::string> unordered_aliases;
  std::set<std::string> status_functions;
};

const std::set<std::string>& WallClockWords() {
  static const std::set<std::string> kWords = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "utc_clock",     "file_clock",   "tai_clock",
      "gps_clock",     "gettimeofday", "clock_gettime",
      "timespec_get",  "localtime",    "gmtime",
      "mktime",        "asctime",      "ctime",
      "strftime",      "ftime",
  };
  return kWords;
}

const std::set<std::string>& RandomWords() {
  static const std::set<std::string> kWords = {
      "random_device", "mt19937",       "mt19937_64", "default_random_engine",
      "minstd_rand",   "minstd_rand0",  "ranlux24",   "ranlux48",
      "knuth_b",       "ranlux24_base", "ranlux48_base",
  };
  return kWords;
}

const std::set<std::string>& RandomCallWords() {
  static const std::set<std::string> kWords = {"rand", "srand", "rand_r",
                                               "drand48", "lrand48",
                                               "random", "srandom"};
  return kWords;
}

// C2: calls that move bytes on the simulated wire or consult the fault
// injector; doing either while holding a lock couples the lock hold time
// to I/O and invites lock-ordering deadlocks with the injector's own
// mutex.
const std::set<std::string>& NetFaultCallWords() {
  static const std::set<std::string> kWords = {
      "Send",       "SendMessage",   "Charge",        "TryCharge",
      "MaybeFail",  "TryRoutedSend", "TryDirectSend", "RoutedSend",
      "DirectSend",
  };
  return kWords;
}

// S2: the integrity envelope's decode entry points (db/serde). Their
// Result carries the checksum verdict; a statement-position discard is
// the one call shape that consumes possibly-rotten bytes while throwing
// away the detection. The names are project-canonical, so the rule needs
// no declaration facts and fires even where db/serde.h is not visible.
const std::set<std::string>& EnvelopeDecodeWords() {
  static const std::set<std::string> kWords = {"UnwrapEnvelope",
                                               "ReadEnvelope"};
  return kWords;
}

const std::set<std::string>& GuardTypeWords() {
  static const std::set<std::string> kWords = {"lock_guard", "scoped_lock",
                                               "unique_lock", "shared_lock"};
  return kWords;
}

class FileLinter {
 public:
  FileLinter(const FileInput& in, const TokenizedFile& tf,
             const VisibleFacts& vis)
      : in_(in), tf_(tf), vis_(vis) {}

  std::vector<Violation> Lint() {
    sups_ = CollectSuppressions(tf_, in_.rel_path, &out_);
    const bool clock_ok = IsClockModule(in_.rel_path);
    const bool random_ok = IsRandomModule(in_.rel_path);
    const bool decision = IsDecisionLayer(in_.rel_path);

    const std::vector<Tok>& t = tf_.toks;
    int brace_depth = 0;
    // Live lock guards: (declaration brace depth, guard variable name).
    std::vector<std::pair<int, std::string>> guards;
    bool stmt_start = true;

    for (size_t i = 0; i < t.size(); ++i) {
      const std::string& s = t[i].text;
      const int line = t[i].line;
      const std::string prev = i > 0 ? t[i - 1].text : "";
      const std::string next = i + 1 < t.size() ? t[i + 1].text : "";

      if (s == "{") ++brace_depth;
      if (s == "}") {
        --brace_depth;
        while (!guards.empty() && guards.back().first > brace_depth) {
          guards.pop_back();
        }
      }

      // --- D1: wall-clock reads ---
      if (!clock_ok && t[i].ident) {
        if (WallClockWords().count(s) != 0) {
          Report("D1", line,
                 "wall-clock read '" + s +
                     "' outside common/clock.* / common/trace.*; route "
                     "timing through SimClock/Stopwatch");
        } else if ((s == "time" || s == "clock") && next == "(" &&
                   (i == 0 || (prev != "." && prev != "->" &&
                               !t[i - 1].ident))) {
          Report("D1", line,
                 "libc '" + s +
                     "()' call outside common/clock.*; simulated code "
                     "must not read the host clock");
        }
      }

      // --- D2: ambient randomness ---
      if (!random_ok && t[i].ident) {
        if (RandomWords().count(s) != 0) {
          Report("D2", line,
                 "'" + s +
                     "' outside common/random.*; all randomness flows "
                     "through explicitly seeded orchestra::Rng");
        } else if (RandomCallWords().count(s) != 0 && next == "(" &&
                   prev != "." && prev != "->" && prev != "::") {
          Report("D2", line,
                 "'" + s +
                     "()' call outside common/random.*; use a seeded "
                     "orchestra::Rng instead");
        }
      }

      // --- D3: unordered iteration in decision layers ---
      if (decision && s == "for" && next == "(") {
        CheckRangeFor(i);
      }
      if (decision && t[i].ident && (next == "." || next == "->") &&
          i + 2 < t.size() &&
          (t[i + 2].text == "begin" || t[i + 2].text == "cbegin") &&
          i + 3 < t.size() && t[i + 3].text == "(" &&
          IsUnorderedName(s)) {
        Report("D3", line,
               "iterator walk over unordered container '" + s +
                   "' in a decision-bearing layer; iterate a sorted "
                   "projection or annotate order-insensitivity");
      }

      // --- D4: pointer-valued keys ---
      if (t[i].ident && next == "<" &&
          (s == "map" || s == "set" || s == "multimap" || s == "multiset" ||
           s == "unordered_map" || s == "unordered_set" || s == "less" ||
           s == "greater")) {
        if (FirstTemplateArgHasPointer(i + 1)) {
          Report("D4", line,
                 "container/comparator '" + s +
                     "' keyed by pointer value; pointer order and hash "
                     "change run to run - key by a stable id instead");
        }
      }

      // --- C1: bare mutex lock/unlock ---
      if ((s == "lock" || s == "unlock" || s == "try_lock") &&
          (prev == "." || prev == "->") && next == "(") {
        Report("C1", line,
               "bare ." + s +
                   "() call; use std::lock_guard/std::scoped_lock (RAII) "
                   "so no exit path leaks the lock");
      }

      // --- C2: guard tracking + send/fault calls under a live guard ---
      if (t[i].ident && GuardTypeWords().count(s) != 0) {
        // lock_guard<std::mutex> name(...) / scoped_lock name(...)
        size_t j = i + 1;
        if (j < t.size() && t[j].text == "<") j = SkipTemplateArgs(t, j);
        if (j < t.size() && t[j].ident && !IsKeyword(t[j].text) &&
            j + 1 < t.size() && t[j + 1].text == "(") {
          guards.emplace_back(brace_depth, t[j].text);
        }
      }
      if (!guards.empty() && t[i].ident &&
          NetFaultCallWords().count(s) != 0 && next == "(") {
        Report("C2", line,
               "'" + s + "(...)' while lock guard '" +
                   guards.back().second +
                   "' is live in this scope; release the lock before "
                   "network or fault-injection calls");
      }

      // --- S1: discarded Status/Result at statement position ---
      if (stmt_start && t[i].ident && !IsKeyword(s)) {
        CheckDiscardedStatus(i);
      }
      stmt_start = (s == ";" || s == "{" || s == "}");
    }

    ApplySuppressions();
    return out_;
  }

  const std::vector<Suppression>& suppressions() const { return sups_; }

 private:
  bool IsUnorderedName(const std::string& name) const {
    return vis_.unordered_names.count(name) != 0;
  }

  // toks[open] == "(" of `for (`. Finds the top-level ':' and inspects
  // the range expression. Call expressions are treated as
  // order-normalizing helpers (e.g. SortedKeys(map_)) and skipped.
  void CheckRangeFor(size_t for_idx) {
    const std::vector<Tok>& t = tf_.toks;
    const size_t open = for_idx + 1;
    int depth = 0;
    size_t colon = 0, close = 0;
    for (size_t j = open; j < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      } else if (s == ":" && depth == 1 && colon == 0) {
        colon = j;
      } else if (s == ";" && depth == 1) {
        return;  // classic for loop
      }
    }
    if (colon == 0 || close == 0) return;
    bool has_call = false;
    std::string hit;
    for (size_t j = colon + 1; j < close; ++j) {
      if (t[j].text == "(") has_call = true;
      if (t[j].ident && (IsUnorderedName(t[j].text) ||
                         vis_.unordered_aliases.count(t[j].text) != 0)) {
        hit = t[j].text;
      }
    }
    if (!hit.empty() && !has_call) {
      Report("D3", t[for_idx].line,
             "range-for over unordered container '" + hit +
                 "' in a decision-bearing layer; iteration order is "
                 "hash-dependent - sort first or annotate "
                 "order-insensitivity");
    }
  }

  // toks[lt] == "<". True when the first top-level template argument
  // contains a '*' (pointer-typed key/compared type).
  bool FirstTemplateArgHasPointer(size_t lt) {
    const std::vector<Tok>& t = tf_.toks;
    int depth = 0;
    for (size_t j = lt; j < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "<") ++depth;
      else if (s == ">") {
        if (--depth == 0) return false;
      } else if (s == "," && depth == 1) {
        return false;  // end of first argument
      } else if (s == "*" && depth == 1) {
        return true;
      } else if (s == ";") {
        return false;  // comparison expression, not a template
      }
    }
    return false;
  }

  // Statement starts at toks[i] with an identifier. Walks the call chain
  // a.b()->c(); if the final call's callee is a known Status/Result
  // returning function and the statement ends right after it, the value
  // was dropped on the floor.
  void CheckDiscardedStatus(size_t i) {
    const std::vector<Tok>& t = tf_.toks;
    size_t j = i;
    std::string callee;
    while (j < t.size()) {
      if (!t[j].ident || IsKeyword(t[j].text)) return;
      callee = t[j].text;
      ++j;
      // Qualifiers / member chains before the call.
      while (j + 1 < t.size() &&
             (t[j].text == "::" || t[j].text == "." || t[j].text == "->") &&
             t[j + 1].ident) {
        callee = t[j + 1].text;
        j += 2;
      }
      if (j >= t.size() || t[j].text != "(") return;
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        else if (t[j].text == ")") {
          if (--depth == 0) {
            ++j;
            break;
          }
        } else if (t[j].text == ";" && depth == 0) {
          return;
        }
      }
      if (j >= t.size()) return;
      if (t[j].text == ";") {
        // S2 outranks S1: an envelope decode's Result is the checksum
        // verdict itself, and the two rules stay mutually exclusive so
        // one discard never double-reports.
        if (EnvelopeDecodeWords().count(callee) != 0) {
          Report("S2", t[i].line,
                 "discarded envelope decode result from '" + callee +
                     "(...)'; dropping it serves possibly-corrupt bytes "
                     "past a failed checksum - check the Result or "
                     "propagate its Status");
        } else if (vis_.status_functions.count(callee) != 0) {
          Report("S1", t[i].line,
                 "discarded Status/Result from '" + callee +
                     "(...)'; check it, propagate it, or make ignoring "
                     "it explicit");
        }
        return;
      }
      if (t[j].text == "." || t[j].text == "->") {
        ++j;  // chained call: evaluate the next callee
        continue;
      }
      return;  // assigned, compared, etc.
    }
  }

  void Report(const std::string& rule, int line, const std::string& message) {
    Violation v;
    v.file = in_.rel_path;
    v.line = line;
    v.rule = rule;
    v.message = message;
    out_.push_back(v);
  }

  void ApplySuppressions() {
    for (Violation& v : out_) {
      if (v.rule == "SUP") continue;
      for (Suppression& s : sups_) {
        if (s.rule == v.rule && s.target_line == v.line) {
          v.suppressed = true;
          v.reason = s.reason;
          s.used = true;
          break;
        }
      }
    }
  }

  const FileInput& in_;
  const TokenizedFile& tf_;
  const VisibleFacts& vis_;
  std::vector<Suppression> sups_;
  std::vector<Violation> out_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

RunResult Run(const std::vector<FileInput>& files) {
  RunResult result;
  result.files_scanned = static_cast<int>(files.size());

  // Pass 1: tokenize everything, collect per-file declaration facts.
  std::map<std::string, TokenizedFile> tokenized;
  std::map<std::string, FileFacts> facts;
  for (const FileInput& f : files) {
    TokenizedFile tf = Tokenize(f.content);
    CollectFacts(tf, &facts[Normalize(f.rel_path)]);
    tokenized.emplace(Normalize(f.rel_path), std::move(tf));
  }

  // Include resolution: quoted includes are project-relative to src/ (the
  // build's single include root) or to the including file's directory.
  auto resolve = [&](const std::string& from,
                     const std::string& inc) -> std::string {
    const std::string norm = Normalize(inc);
    for (const auto& [path, unused] : facts) {
      (void)unused;
      if (path == norm || path == "src/" + norm) return path;
      // Same-directory include.
      const std::string dir =
          Normalize(from).substr(0, Normalize(from).find_last_of('/') + 1);
      if (path == dir + norm) return path;
    }
    return "";
  };

  // Pass 2: lint each file against the facts visible through its
  // include closure (keeps e.g. a vector member named `txns` in core/
  // from colliding with store/'s unordered `txns`).
  for (const FileInput& f : files) {
    const std::string key = Normalize(f.rel_path);
    VisibleFacts vis;
    std::set<std::string> seen;
    std::deque<std::string> work{key};
    while (!work.empty()) {
      const std::string cur = work.front();
      work.pop_front();
      if (!seen.insert(cur).second) continue;
      auto it = facts.find(cur);
      if (it == facts.end()) continue;
      const FileFacts& ff = it->second;
      vis.unordered_names.insert(ff.unordered_names.begin(),
                                 ff.unordered_names.end());
      vis.unordered_aliases.insert(ff.unordered_aliases.begin(),
                                   ff.unordered_aliases.end());
      vis.status_functions.insert(ff.status_functions.begin(),
                                  ff.status_functions.end());
      for (const std::string& inc : ff.includes) {
        const std::string resolved = resolve(cur, inc);
        if (!resolved.empty()) work.push_back(resolved);
      }
    }
    // Alias-typed declarations resolve against the closure's aliases.
    for (const std::string& file : seen) {
      auto it = facts.find(file);
      if (it == facts.end()) continue;
      for (const auto& [type, name] : it->second.alias_decls) {
        if (vis.unordered_aliases.count(type) != 0) {
          vis.unordered_names.insert(name);
        }
      }
    }

    FileLinter linter(f, tokenized.at(key), vis);
    std::vector<Violation> vs = linter.Lint();
    for (Violation& v : vs) {
      if (v.suppressed) {
        ++result.suppressed;
        ++result.suppressed_by_rule[v.rule];
      } else {
        ++result.unsuppressed;
        ++result.unsuppressed_by_rule[v.rule];
      }
      result.violations.push_back(std::move(v));
    }
    for (const Suppression& s : linter.suppressions()) {
      if (!s.used) {
        ++result.unused_suppressions;
        result.unused_suppression_notes.push_back(
            f.rel_path + ":" + std::to_string(s.comment_line) +
            ": unused ORCH_LINT(allow:" + s.rule + ") suppression");
      }
    }
  }

  std::sort(result.violations.begin(), result.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

std::string FormatReport(const RunResult& result, bool verbose) {
  std::ostringstream os;
  for (const Violation& v : result.violations) {
    if (v.suppressed && !verbose) continue;
    os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
    if (v.suppressed) os << " (suppressed: " << v.reason << ")";
    os << "\n";
  }
  if (verbose) {
    for (const std::string& note : result.unused_suppression_notes) {
      os << note << "\n";
    }
  }
  os << "orch_lint: " << result.files_scanned << " file(s), "
     << result.unsuppressed << " violation(s), " << result.suppressed
     << " suppressed";
  if (result.unused_suppressions > 0) {
    os << ", " << result.unused_suppressions << " unused suppression(s)";
  }
  bool first = true;
  for (const auto& [rule, count] : result.unsuppressed_by_rule) {
    os << (first ? " [" : " ") << rule << ":" << count;
    first = false;
  }
  if (!first) os << "]";
  os << "\n";
  return os.str();
}

bool ReadCompileCommands(const std::string& path,
                         std::vector<std::string>* files) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    size_t colon = text.find(':', pos + key.size());
    if (colon == std::string::npos) break;
    size_t q1 = text.find('"', colon + 1);
    if (q1 == std::string::npos) break;
    size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    files->push_back(text.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return true;
}

}  // namespace orchestra::lint
