#ifndef ORCHESTRA_TOOLS_ORCH_LINT_LIB_H_
#define ORCHESTRA_TOOLS_ORCH_LINT_LIB_H_

#include <map>
#include <set>
#include <string>
#include <vector>

/// orch_lint: the project's determinism & concurrency static-analysis
/// pass. A tokenizer plus heuristic matchers (no libclang, so it builds
/// and runs everywhere the project builds) enforcing the rulebook that
/// the dynamic determinism tests (parallel_determinism, fault/churn/delta
/// sweeps) depend on:
///
///   D1  wall-clock reads (std::chrono::*_clock, time(), clock(), ...)
///       only inside common/clock.* and common/trace.*
///   D2  ambient randomness (rand(), std::random_device, default-seeded
///       engines) only inside common/random.*
///   D3  no range-for / .begin() iteration over std::unordered_map /
///       std::unordered_set in decision-bearing layers (core/, store/,
///       sim/) unless annotated order-insensitive
///   D4  no ordered container keyed by pointer value (std::map<T*, ...>,
///       std::set<T*>, std::less<T*>), and no pointer-keyed hash
///       containers either - pointer values change run to run
///   C1  no bare mutex .lock()/.unlock()/.try_lock() - RAII guards only
///   C2  no network send / fault-injection call while a lock guard is
///       live in the same scope (lock-ordering and latency hazard)
///   S1  no discarded Status / Result return value at statement position
///   S2  no discarded envelope decode (UnwrapEnvelope / ReadEnvelope) -
///       dropping that Result silently ignores detected corruption; the
///       canonical names make this checkable without declaration facts
///
/// Every rule supports an inline, audited suppression:
///
///   // ORCH_LINT(allow:D3): <written reason>
///
/// on the violating line or on its own line directly above. Suppressions
/// without a reason (or naming an unknown rule) are themselves errors;
/// used suppressions are counted and reported so exceptions stay visible.
namespace orchestra::lint {

/// One finding. `suppressed` findings are reported but do not fail the
/// run; `rule` is one of D1..D4, C1, C2, S1, S2, or SUP for malformed
/// suppression comments.
struct Violation {
  std::string file;  // path as given (repo-relative in the CLI)
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string reason;  // the suppression's written reason, if suppressed
};

/// A source file to lint. `rel_path` decides which rules apply (layer
/// detection and the common/clock, common/trace, common/random
/// exemptions) and how `#include "..."` directives resolve.
struct FileInput {
  std::string rel_path;
  std::string content;
};

/// Aggregate outcome of a lint run over a set of files.
struct RunResult {
  std::vector<Violation> violations;  // sorted by (file, line, rule)
  std::map<std::string, int> unsuppressed_by_rule;
  std::map<std::string, int> suppressed_by_rule;
  int files_scanned = 0;
  int unsuppressed = 0;
  int suppressed = 0;
  int unused_suppressions = 0;
  std::vector<std::string> unused_suppression_notes;  // informational

  bool clean() const { return unsuppressed == 0; }
};

/// Lints `files` as one project: declaration facts (unordered-container
/// names, Status/Result-returning functions, type aliases) are collected
/// from every file first, then each file is checked against the facts
/// visible through its `#include "..."` closure.
RunResult Run(const std::vector<FileInput>& files);

/// Renders the standard report (one line per finding plus a summary).
std::string FormatReport(const RunResult& result, bool verbose);

/// Reads the "file" entries of a compile_commands.json. Returns absolute
/// or build-relative paths exactly as recorded; the caller filters and
/// normalizes. Returns false when the file cannot be read.
bool ReadCompileCommands(const std::string& path,
                         std::vector<std::string>* files);

}  // namespace orchestra::lint

#endif  // ORCHESTRA_TOOLS_ORCH_LINT_LIB_H_
