// orchestra_cli: a scriptable shell for driving a CDSS confederation.
//
// Reads commands from stdin (interactively or piped), one per line:
//
//   peers N [central|dht]      declare a confederation of N peers (1..N)
//   trust A B PRIO             peer A accepts peer B's updates at PRIO
//   go                         build the confederation (implicit on first
//                              action command)
//   exec P insert ORG PROT FN          one-update transaction at peer P
//   exec P modify ORG PROT FROM TO
//   exec P delete ORG PROT FN
//   begin P / add insert|modify|delete ... / commit
//                              multi-update transaction
//   publish P                  publish P's queued transactions
//   reconcile P [nc]           reconcile P (nc = network-centric)
//   conflicts P                list P's open conflict groups
//   resolve P GROUP OPT|none   resolve one conflict group at P
//   explain [P] TXNID          render the causal chain behind every
//                              decision recorded for TXNID (at P only,
//                              or across all peers)
//   show P                     print P's instance
//   ratio                      state ratio across all peers
//   stats P                    store-interaction stats for P
//   recover P                  rebuild P from the store (crash recovery)
//   # ...                      comment
//   quit
//
// Example session (also see examples/):
//   peers 3
//   trust 1 2 1
//   trust 1 3 1
//   exec 3 insert rat prot1 cell-metab
//   publish 3
//   reconcile 1
//   show 1
#include <cstdio>
#include <iostream>
#include <map>
#include <set>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "workload/swissprot.h"

using namespace orchestra;

namespace {

class Shell {
 public:
  Shell() {
    auto catalog = workload::MakeSwissProtCatalog();
    ORCH_CHECK(catalog.ok());
    catalog_ = *std::move(catalog);
  }

  int RunScript(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      if (!Execute(line)) return 0;  // quit
    }
    return 0;
  }

 private:
  static std::vector<std::string> Tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token) tokens.push_back(token);
    return tokens;
  }

  void Error(const std::string& message) {
    std::printf("error: %s\n", message.c_str());
  }

  bool EnsureBuilt() {
    if (!participants_.empty()) return true;
    if (n_peers_ == 0) {
      Error("declare the confederation first: peers N [central|dht]");
      return false;
    }
    if (store_kind_ == "dht") {
      store_ = std::make_unique<store::DhtStore>(n_peers_, &network_,
                                                 &catalog_);
    } else {
      engine_ = storage::StorageEngine::InMemory();
      store_ = std::make_unique<store::CentralStore>(
          engine_.get(), &network_, store::CentralStoreOptions{}, &catalog_);
    }
    for (size_t i = 1; i <= n_peers_; ++i) {
      const auto id = static_cast<core::ParticipantId>(i);
      auto status = store_->RegisterParticipant(id, policies_[i - 1].get());
      if (!status.ok()) {
        Error(status.ToString());
        return false;
      }
      participants_.push_back(std::make_unique<core::Participant>(
          id, &catalog_, *policies_[i - 1]));
    }
    std::printf("confederation of %zu peers over the %s store is up\n",
                n_peers_, store_->name().data());
    return true;
  }

  core::Participant* Peer(const std::string& token) {
    const size_t index = static_cast<size_t>(std::atol(token.c_str()));
    if (index == 0 || index > participants_.size()) {
      Error("no peer " + token);
      return nullptr;
    }
    return participants_[index - 1].get();
  }

  std::optional<core::Update> ParseUpdate(
      const std::vector<std::string>& tokens, size_t at) {
    if (at >= tokens.size()) {
      Error("missing update kind");
      return std::nullopt;
    }
    const std::string& kind = tokens[at];
    auto tuple = [&](size_t from) {
      return db::Tuple{db::Value(tokens[from]), db::Value(tokens[from + 1]),
                       db::Value(tokens[from + 2])};
    };
    if (kind == "insert" && tokens.size() >= at + 4) {
      return core::Update::Insert(workload::kFunctionRelation, tuple(at + 1),
                                  0);
    }
    if (kind == "delete" && tokens.size() >= at + 4) {
      return core::Update::Delete(workload::kFunctionRelation, tuple(at + 1),
                                  0);
    }
    if (kind == "modify" && tokens.size() >= at + 5) {
      db::Tuple old_tuple{db::Value(tokens[at + 1]), db::Value(tokens[at + 2]),
                          db::Value(tokens[at + 3])};
      db::Tuple new_tuple{db::Value(tokens[at + 1]), db::Value(tokens[at + 2]),
                          db::Value(tokens[at + 4])};
      return core::Update::Modify(workload::kFunctionRelation,
                                  std::move(old_tuple), std::move(new_tuple),
                                  0);
    }
    Error("usage: insert ORG PROT FN | modify ORG PROT FROM TO | "
          "delete ORG PROT FN");
    return std::nullopt;
  }

  static std::optional<core::TransactionId> ParseTxnId(
      const std::string& token) {
    const char* s = token.c_str();
    if (*s == 'X' || *s == 'x') ++s;
    unsigned origin = 0;
    unsigned long long seq = 0;
    char trailing = 0;
    if (std::sscanf(s, "%u:%llu%c", &origin, &seq, &trailing) != 2) {
      return std::nullopt;
    }
    core::TransactionId id;
    id.origin = static_cast<core::ParticipantId>(origin);
    id.seq = seq;
    return id;
  }

  /// Renders the causal chain under `rec`: the deferral/rejection
  /// blocker and every decisive counterparty have records of their own
  /// in the same log; walking them explains the explanation. `visited`
  /// cuts cycles — a dilemma's two records are mutually decisive.
  static void ExplainChain(const std::vector<core::ProvenanceRecord>& log,
                           const core::ProvenanceRecord& rec, int depth,
                           std::set<core::TransactionId>* visited) {
    if (depth > 8) return;
    std::vector<core::TransactionId> next;
    if (rec.blocker) next.push_back(*rec.blocker);
    for (const auto& cmp : rec.comparisons) {
      if (cmp.decisive) next.push_back(cmp.counterparty);
    }
    for (const auto& id : next) {
      if (!visited->insert(id).second) continue;
      const core::ProvenanceRecord* cause = nullptr;
      for (const auto& r : log) {  // latest record at or before rec's round
        if (r.txn == id && r.recno <= rec.recno) cause = &r;
      }
      if (cause == nullptr) continue;
      std::printf("%*sbecause: %s\n", depth * 2, "", cause->ToText().c_str());
      ExplainChain(log, *cause, depth + 1, visited);
    }
  }

  void ReportLine(const core::ReconcileReport& report) {
    std::printf("recno %lld: %zu fetched, %zu reconsidered -> %zu accepted, "
                "%zu rejected, %zu deferred (%zu open conflict groups)\n",
                static_cast<long long>(report.recno), report.fetched,
                report.reconsidered, report.accepted.size(),
                report.rejected.size(), report.deferred.size(),
                report.open_conflict_groups);
  }

  // Returns false to quit.
  bool Execute(const std::string& line) {
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') return true;
    const std::string& cmd = tokens[0];

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf("%s", kHelp);
      return true;
    }
    if (cmd == "peers") {
      if (!participants_.empty()) {
        Error("confederation already built");
        return true;
      }
      if (tokens.size() < 2) {
        Error("usage: peers N [central|dht]");
        return true;
      }
      n_peers_ = static_cast<size_t>(std::atol(tokens[1].c_str()));
      if (n_peers_ == 0 || n_peers_ > 1000) {
        Error("peer count must be in 1..1000");
        n_peers_ = 0;
        return true;
      }
      store_kind_ = tokens.size() > 2 ? tokens[2] : "central";
      policies_.clear();
      for (size_t i = 1; i <= n_peers_; ++i) {
        policies_.push_back(std::make_unique<core::TrustPolicy>(
            static_cast<core::ParticipantId>(i)));
      }
      std::printf("declared %zu peers (%s store); add trust rules, then "
                  "issue any action command\n",
                  n_peers_, store_kind_.c_str());
      return true;
    }
    if (cmd == "trust") {
      if (!participants_.empty()) {
        Error("trust rules must be declared before the first action");
        return true;
      }
      if (tokens.size() < 4 || n_peers_ == 0) {
        Error("usage (after peers): trust A B PRIO");
        return true;
      }
      const size_t a = static_cast<size_t>(std::atol(tokens[1].c_str()));
      const size_t b = static_cast<size_t>(std::atol(tokens[2].c_str()));
      const int prio = std::atoi(tokens[3].c_str());
      if (a == 0 || a > n_peers_ || b == 0 || b > n_peers_) {
        Error("peer out of range");
        return true;
      }
      policies_[a - 1]->TrustPeer(static_cast<core::ParticipantId>(b), prio);
      return true;
    }

    // Everything below acts on a built confederation.
    if (!EnsureBuilt()) return true;

    if (cmd == "exec" && tokens.size() >= 3) {
      core::Participant* peer = Peer(tokens[1]);
      if (peer == nullptr) return true;
      auto update = ParseUpdate(tokens, 2);
      if (!update) return true;
      auto txn = peer->ExecuteTransaction({*std::move(update)});
      if (!txn.ok()) {
        Error(txn.status().ToString());
      } else {
        std::printf("executed %s\n", txn->ToString().c_str());
      }
      return true;
    }
    if (cmd == "begin" && tokens.size() >= 2) {
      pending_peer_ = tokens[1];
      pending_updates_.clear();
      return true;
    }
    if (cmd == "add") {
      if (pending_peer_.empty()) {
        Error("no transaction in progress; use begin P");
        return true;
      }
      auto update = ParseUpdate(tokens, 1);
      if (update) pending_updates_.push_back(*std::move(update));
      return true;
    }
    if (cmd == "commit") {
      core::Participant* peer = Peer(pending_peer_);
      pending_peer_.clear();
      if (peer == nullptr || pending_updates_.empty()) {
        Error("nothing to commit");
        return true;
      }
      auto txn = peer->ExecuteTransaction(std::move(pending_updates_));
      pending_updates_.clear();
      if (!txn.ok()) {
        Error(txn.status().ToString());
      } else {
        std::printf("executed %s\n", txn->ToString().c_str());
      }
      return true;
    }
    if (cmd == "publish" && tokens.size() >= 2) {
      core::Participant* peer = Peer(tokens[1]);
      if (peer == nullptr) return true;
      auto epoch = peer->Publish(store_.get());
      if (!epoch.ok()) {
        Error(epoch.status().ToString());
      } else if (*epoch == core::kNoEpoch) {
        std::printf("nothing to publish\n");
      } else {
        std::printf("published epoch %lld\n", static_cast<long long>(*epoch));
      }
      return true;
    }
    if (cmd == "reconcile" && tokens.size() >= 2) {
      core::Participant* peer = Peer(tokens[1]);
      if (peer == nullptr) return true;
      const bool nc = tokens.size() > 2 && tokens[2] == "nc";
      auto report = nc ? peer->ReconcileNetworkCentric(store_.get())
                       : peer->Reconcile(store_.get());
      if (!report.ok()) {
        Error(report.status().ToString());
      } else {
        ReportLine(*report);
      }
      return true;
    }
    if (cmd == "conflicts" && tokens.size() >= 2) {
      core::Participant* peer = Peer(tokens[1]);
      if (peer == nullptr) return true;
      const auto& groups = peer->pending_conflicts();
      if (groups.empty()) std::printf("no open conflicts\n");
      for (size_t g = 0; g < groups.size(); ++g) {
        std::printf("group %zu: %s\n", g, groups[g].point.ToString().c_str());
        for (size_t o = 0; o < groups[g].options.size(); ++o) {
          std::printf("  option %zu: %s\n", o,
                      groups[g].options[o].effect.c_str());
        }
      }
      return true;
    }
    if (cmd == "resolve" && tokens.size() >= 4) {
      core::Participant* peer = Peer(tokens[1]);
      if (peer == nullptr) return true;
      const size_t group = static_cast<size_t>(std::atol(tokens[2].c_str()));
      std::optional<size_t> option;
      if (tokens[3] != "none") {
        option = static_cast<size_t>(std::atol(tokens[3].c_str()));
      }
      auto report = peer->ResolveConflict(store_.get(), group, option);
      if (!report.ok()) {
        Error(report.status().ToString());
      } else {
        ReportLine(*report);
      }
      return true;
    }
    if (cmd == "explain" && tokens.size() >= 2) {
      std::vector<core::Participant*> scope;
      std::string txn_token;
      if (tokens.size() >= 3) {
        core::Participant* peer = Peer(tokens[1]);
        if (peer == nullptr) return true;
        scope.push_back(peer);
        txn_token = tokens[2];
      } else {
        for (const auto& p : participants_) scope.push_back(p.get());
        txn_token = tokens[1];
      }
      const auto txn = ParseTxnId(txn_token);
      if (!txn) {
        Error("usage: explain [P] TXNID (e.g. explain X3:1)");
        return true;
      }
      bool any = false;
      for (core::Participant* peer : scope) {
        const auto& log = peer->provenance_log();
        for (const auto& rec : log) {
          if (rec.txn != *txn) continue;
          any = true;
          std::printf("%s\n", rec.ToText().c_str());
          std::set<core::TransactionId> visited{rec.txn};
          ExplainChain(log, rec, 1, &visited);
        }
      }
      if (!any) {
        std::printf("no decision recorded for %s\n", txn->ToString().c_str());
      }
      return true;
    }
    if (cmd == "show" && tokens.size() >= 2) {
      core::Participant* peer = Peer(tokens[1]);
      if (peer == nullptr) return true;
      std::printf("%s", peer->instance().ToString().c_str());
      return true;
    }
    if (cmd == "ratio") {
      std::vector<const core::Participant*> view;
      for (const auto& p : participants_) view.push_back(p.get());
      std::printf("state ratio over %s: %.3f\n", workload::kFunctionRelation,
                  sim_ratio(view));
      return true;
    }
    if (cmd == "stats" && tokens.size() >= 2) {
      core::Participant* peer = Peer(tokens[1]);
      if (peer == nullptr) return true;
      const core::StoreStats stats = store_->StatsFor(peer->id());
      std::printf("store: %lld msgs, %lld bytes, %.3f ms network, "
                  "%.3f ms store cpu, %lld calls\n",
                  static_cast<long long>(stats.messages),
                  static_cast<long long>(stats.bytes),
                  static_cast<double>(stats.sim_network_micros) / 1e3,
                  static_cast<double>(stats.store_cpu_micros) / 1e3,
                  static_cast<long long>(stats.calls));
      return true;
    }
    if (cmd == "bootstrap" && tokens.size() >= 3) {
      const size_t index = static_cast<size_t>(std::atol(tokens[1].c_str()));
      const size_t source = static_cast<size_t>(std::atol(tokens[2].c_str()));
      if (index == 0 || index > participants_.size() || source == 0 ||
          source > participants_.size()) {
        Error("usage: bootstrap NEWPEER SOURCEPEER (both in range)");
        return true;
      }
      core::TrustPolicy policy = *policies_[index - 1];
      auto fresh = core::Participant::BootstrapFrom(
          static_cast<core::ParticipantId>(index), &catalog_,
          std::move(policy), store_.get(),
          static_cast<core::ParticipantId>(source));
      if (!fresh.ok()) {
        Error(fresh.status().ToString());
        return true;
      }
      participants_[index - 1] = std::move(*fresh);
      std::printf("peer %zu bootstrapped from peer %zu: %zu tuples adopted, "
                  "%zu deferred to re-decide\n",
                  index, source,
                  participants_[index - 1]->instance().TotalTuples(),
                  participants_[index - 1]->deferred_count());
      return true;
    }
    if (cmd == "recover" && tokens.size() >= 2) {
      const size_t index = static_cast<size_t>(std::atol(tokens[1].c_str()));
      if (index == 0 || index > participants_.size()) {
        Error("no peer " + tokens[1]);
        return true;
      }
      core::TrustPolicy policy = *policies_[index - 1];
      auto recovered = core::Participant::RecoverFromStore(
          static_cast<core::ParticipantId>(index), &catalog_,
          std::move(policy), store_.get());
      if (!recovered.ok()) {
        Error(recovered.status().ToString());
        return true;
      }
      participants_[index - 1] = std::move(*recovered);
      std::printf("peer %zu rebuilt from the store: %zu tuples, %zu applied, "
                  "%zu deferred\n",
                  index, participants_[index - 1]->instance().TotalTuples(),
                  participants_[index - 1]->applied_count(),
                  participants_[index - 1]->deferred_count());
      return true;
    }
    Error("unknown command '" + cmd + "'; try help");
    return true;
  }

  // Local copy of the state-ratio metric to avoid linking the sim lib.
  static double sim_ratio(const std::vector<const core::Participant*>& view);

  static constexpr const char kHelp[] =
      "commands:\n"
      "  peers N [central|dht]\n"
      "  trust A B PRIO\n"
      "  exec P insert|modify|delete ...\n"
      "  begin P / add ... / commit\n"
      "  publish P | reconcile P [nc] | conflicts P\n"
      "  resolve P GROUP OPT|none | show P | ratio | stats P\n"
      "  explain [P] TXNID   why TXNID was accepted/rejected/deferred\n"
      "  recover P | bootstrap NEWPEER SOURCEPEER\n"
      "  quit\n";

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<core::UpdateStore> store_;
  size_t n_peers_ = 0;
  std::string store_kind_ = "central";
  std::vector<std::unique_ptr<core::TrustPolicy>> policies_;
  std::vector<std::unique_ptr<core::Participant>> participants_;
  std::string pending_peer_;
  std::vector<core::Update> pending_updates_;
};

double Shell::sim_ratio(const std::vector<const core::Participant*>& view) {
  // Inline state ratio (matches sim::StateRatio).
  std::map<db::Tuple, std::pair<std::set<db::Tuple>, size_t>> states;
  for (const core::Participant* p : view) {
    auto table = p->instance().GetTable(workload::kFunctionRelation);
    if (!table.ok()) continue;
    for (const db::Tuple& tuple : (*table)->Scan()) {
      auto& entry = states[(*table)->schema().KeyOf(tuple)];
      entry.first.insert(tuple);
      entry.second += 1;
    }
  }
  if (states.empty()) return 1.0;
  double total = 0;
  for (const auto& [key, entry] : states) {
    total += static_cast<double>(entry.first.size() +
                                 (entry.second < view.size() ? 1 : 0));
  }
  return total / static_cast<double>(states.size());
}

}  // namespace

int main() {
  Shell shell;
  return shell.RunScript(std::cin);
}
