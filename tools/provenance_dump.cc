// provenance_dump: runs a seeded confederation and bulk-exports every
// decision-provenance record (core/provenance.h) as JSONL — one record
// per line, deterministic byte-for-byte for a given configuration.
//
// Usage: provenance_dump [central|dht] [out.jsonl]
//   out.jsonl defaults to stdout. The summary goes to stderr so the
//   JSONL stream stays machine-readable.
//
// For the central store the tool also re-reads the durable "prov:<peer>"
// tables, verifies every row's CRC envelope, and checks the payloads
// match what the participants recorded — a round-trip audit of the
// persistence path.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "db/serde.h"
#include "core/provenance.h"
#include "sim/cdss.h"
#include "storage/engine.h"

using namespace orchestra;

int main(int argc, char** argv) {
  sim::CdssConfig cfg;
  cfg.participants = 6;
  cfg.rounds = 4;
  cfg.txns_between_recons = 2;
  cfg.seed = 42;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "dht") == 0) {
      cfg.store = sim::StoreKind::kDht;
    } else if (std::strcmp(argv[i], "central") == 0) {
      cfg.store = sim::StoreKind::kCentral;
    } else {
      out_path = argv[i];
    }
  }

  auto cdss = sim::Cdss::Make(cfg);
  if (!cdss.ok()) {
    std::fprintf(stderr, "Cdss::Make failed: %s\n",
                 cdss.status().ToString().c_str());
    return 1;
  }
  auto result = (*cdss)->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "Cdss::Run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // Participant logs, in peer order then record order — the canonical
  // deterministic serialization (also what the determinism test diffs).
  std::string jsonl;
  size_t records = 0;
  for (size_t i = 0; i < (*cdss)->participant_count(); ++i) {
    const auto& log = (*cdss)->participant(i).provenance_log();
    jsonl += core::ToJsonLines(log);
    records += log.size();
  }

  if (out_path.empty()) {
    std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
  }
  std::fprintf(stderr, "%zu provenance records from %zu peers (%s store)\n",
               records, (*cdss)->participant_count(),
               cfg.store == sim::StoreKind::kDht ? "dht" : "central");

  // Durable round-trip audit (central store only: the DHT keeps its
  // advisory log in memory at the coordinator).
  if (storage::StorageEngine* engine = (*cdss)->engine(); engine != nullptr) {
    size_t rows = 0;
    size_t bad = 0;
    for (const std::string& table : engine->TableNames()) {
      if (table.rfind("prov:", 0) != 0) continue;
      for (const auto& [key, value] : engine->ScanPrefix(table, "")) {
        ++rows;
        auto payload =
            db::UnwrapEnvelope(value, db::EnvelopePolicy::kRequireFrame);
        if (!payload.ok() || jsonl.find(*payload) == std::string::npos) ++bad;
      }
    }
    std::fprintf(stderr,
                 "durable audit: %zu enveloped rows, %zu failed "
                 "verification or diverged from the in-memory log\n",
                 rows, bad);
    if (bad != 0) return 1;
  }
  return 0;
}
